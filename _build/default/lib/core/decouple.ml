(* The decoupler: turns a normalized serial body plus a set of cut points
   into a multi-stage pipeline. The paper factors this into passes
   (Fig. 5); here each pass is a feature gate applied during one staged
   lowering, which keeps every position-dependent decision consistent:

   - queues (always on): stage assignment at the cuts, replication of the
     control skeleton, scalar communication via queues placed at def
     positions (forward chains, direct feedback edges), init replication.
   - recompute: pure, cheap cross-stage values are re-derived locally
     instead of queued (rematerialization).
   - ra: cut loads move into reference accelerators; adjacent loads on the
     same array share one RA.
   - cv: consumer loops whose bounds are queued per iteration become
     while(true) loops terminated by in-band control values.
   - handlers: the per-element is_control check moves into a control-value
     handler.
   - dce (inter-stage): control-value levels that downstream stages do not
     need are merged away; conditionals whose payloads are queued under the
     producer's condition are elided in consumers.

   Scan-chaining and stage elision run afterwards (see Chain). *)

open Phloem_ir.Types
module K = Ktree

type flags = {
  f_recompute : bool;
  f_ra : bool;
  f_cv : bool;
  f_handlers : bool;
  f_dce : bool;
}

let all_passes =
  { f_recompute = true; f_ra = true; f_cv = true; f_handlers = true; f_dce = true }

let queues_only =
  { f_recompute = false; f_ra = false; f_cv = false; f_handlers = false; f_dce = false }

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

(* A communication channel: one or more variables (a merged cut group)
   flowing from a producer stage through a forward chain and/or backward
   edges. *)
type channel = {
  ch_vars : var list;
  ch_def_stage : int;
  ch_def_keys : int list; (* def keys, program order *)
  mutable ch_chain : (int * int) list; (* (stage, queue into that stage), forward *)
  mutable ch_back : (int * int) list; (* (stage, queue), feedback *)
  mutable ch_ra : int option; (* RA id when the producing loads are offloaded *)
  mutable ch_ra_in : int; (* RA input queue (valid when ch_ra set) *)
}

type context = {
  flags : flags;
  tree : K.t list;
  n_keys : int;
  stage_of : int array; (* key -> stage; -1 for control nodes *)
  load_ord : int array; (* key -> load ordinal or -1 *)
  prefetch_from : (int, int) Hashtbl.t; (* load key -> producer stage *)
  cut_head_keys : (int, unit) Hashtbl.t; (* keys of normal-cut loads (RA candidates) *)
  n_stages : int;
  parent_loops : (int, int list) Hashtbl.t; (* key -> enclosing loop keys, inner first *)
  def_keys : (var, int list) Hashtbl.t;
  def_stages : (var, int list) Hashtbl.t;
  replicated : (var, unit) Hashtbl.t; (* vars whose every def is init-replicated *)
  replicated_keys : (int, unit) Hashtbl.t;
  induction_of : (var, int) Hashtbl.t; (* induction var -> loop key *)
  params : var list;
  key_node : K.t option array;
}

(* ---------- phase A: stage assignment ---------- *)

let assign_stages tree n_keys (cuts : Costmodel.cut list) =
  let stage_of = Array.make n_keys (-1) in
  let load_ord = Array.make n_keys (-1) in
  let prefetch_from = Hashtbl.create 4 in
  let cut_head_keys = Hashtbl.create 4 in
  (* ordinal -> cut info *)
  let cut_start = Hashtbl.create 8 in
  let cut_end = Hashtbl.create 8 in
  List.iter
    (fun (c : Costmodel.cut) ->
      let first = List.hd c.cut_loads in
      let last = List.nth c.cut_loads (List.length c.cut_loads - 1) in
      Hashtbl.replace cut_start first c;
      Hashtbl.replace cut_end last c)
    cuts;
  let ordinal = ref 0 in
  let stage = ref 0 in
  let rec walk nodes =
    List.iter
      (fun node ->
        match node with
        | K.Kstmt (k, stmt) -> (
          match K.stmt_load stmt with
          | None -> stage_of.(k) <- !stage
          | Some _ ->
            let o = !ordinal in
            incr ordinal;
            load_ord.(k) <- o;
            (match Hashtbl.find_opt cut_start o with
            | Some c when c.Costmodel.cut_prefetch ->
              (* boundary before the load; producer prefetches *)
              Hashtbl.replace prefetch_from k !stage;
              incr stage
            | Some _ | None -> ());
            stage_of.(k) <- !stage;
            (match Hashtbl.find_opt cut_end o with
            | Some c when not c.Costmodel.cut_prefetch ->
              List.iter
                (fun _ -> ())
                c.Costmodel.cut_loads;
              Hashtbl.replace cut_head_keys k ();
              incr stage
            | Some _ | None -> ());
            (* non-tail members of a normal cut group are also RA-mergeable *)
            (match Hashtbl.find_opt cut_start o with
            | Some c when (not c.Costmodel.cut_prefetch) && List.length c.Costmodel.cut_loads > 1
              ->
              Hashtbl.replace cut_head_keys k ()
            | _ -> ()))
        | K.Kif (_, _, _, t, f) ->
          walk t;
          walk f
        | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> walk b)
      nodes
  in
  walk tree;
  (* middle members of normal groups: mark them too *)
  let rec mark_members nodes =
    List.iter
      (fun node ->
        match node with
        | K.Kstmt (k, stmt) -> (
          match K.stmt_load stmt with
          | Some _ ->
            let o = load_ord.(k) in
            List.iter
              (fun (c : Costmodel.cut) ->
                if (not c.Costmodel.cut_prefetch) && List.mem o c.Costmodel.cut_loads then
                  Hashtbl.replace cut_head_keys k ())
              cuts
          | None -> ())
        | K.Kif (_, _, _, t, f) ->
          mark_members t;
          mark_members f
        | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> mark_members b)
      nodes
  in
  mark_members tree;
  (stage_of, load_ord, prefetch_from, cut_head_keys, !stage + 1)

(* ---------- phase B: context construction ---------- *)

let build_context ?(flags = all_passes) ~params tree n_keys cuts =
  let stage_of, load_ord, prefetch_from, cut_head_keys, n_stages =
    assign_stages tree n_keys cuts
  in
  let parent_loops = Hashtbl.create 32 in
  let def_keys = Hashtbl.create 32 in
  let def_stages = Hashtbl.create 32 in
  let induction_of = Hashtbl.create 8 in
  let key_node = Array.make n_keys None in
  let add_def x k =
    let cur = try Hashtbl.find def_keys x with Not_found -> [] in
    Hashtbl.replace def_keys x (cur @ [ k ]);
    let s = stage_of.(k) in
    let cur = try Hashtbl.find def_stages x with Not_found -> [] in
    if not (List.mem s cur) then Hashtbl.replace def_stages x (s :: cur)
  in
  let rec walk loops nodes =
    List.iter
      (fun node ->
        key_node.(K.key node) <- Some node;
        Hashtbl.replace parent_loops (K.key node) loops;
        match node with
        | K.Kstmt (k, stmt) -> (
          match K.stmt_def stmt with Some x -> add_def x k | None -> ())
        | K.Kif (_, _, _, t, f) ->
          walk loops t;
          walk loops f
        | K.Kwhile (k, _, _, b) -> walk (k :: loops) b
        | K.Kfor (k, _, v, _, _, b) ->
          Hashtbl.replace induction_of v k;
          walk (k :: loops) b)
      nodes
  in
  walk [] tree;
  (* Sink movable initializers: a pure constant-ish def of a variable whose
     remaining defs all live in one stage moves to that stage (e.g. an
     accumulator reset at the top of an outer loop, accumulated downstream). *)
  Hashtbl.iter
    (fun x dks ->
      let stages = List.sort_uniq compare (List.map (fun k -> stage_of.(k)) dks) in
      if List.length stages > 1 then begin
        let movable k =
          match key_node.(k) with
          | Some (K.Kstmt (_, Assign (_, rhs))) -> (
            match rhs with
            | Const _ -> true
            | Var y | Binop (_, Var y, Const _) | Binop (_, Const _, Var y) ->
              List.mem y params
            | _ -> false)
          | _ -> false
        in
        let fixed = List.filter (fun k -> not (movable k)) dks in
        let fixed_stages = List.sort_uniq compare (List.map (fun k -> stage_of.(k)) fixed) in
        match fixed_stages with
        | [ t ] ->
          List.iter (fun k -> if movable k then stage_of.(k) <- t) dks;
          Hashtbl.replace def_stages x [ t ]
        | _ -> ()
      end)
    def_keys;
  (* init replication: depth-0 pure defs over params/other replicated vars,
     plus depth-0 constant stores handled at emission. *)
  let replicated = Hashtbl.create 8 in
  let replicated_keys = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    let scan_node node =
      match node with
      | K.Kstmt (k, Assign (x, rhs))
        when Hashtbl.find parent_loops k = [] && K.expr_is_pure rhs
             && not (Hashtbl.mem replicated_keys k) ->
        let ops = K.expr_uses [] rhs in
        let avail v = List.mem v params || Hashtbl.mem replicated v in
        if List.for_all avail ops then begin
          Hashtbl.replace replicated_keys k ();
          changed := true;
          (* a var is fully local everywhere if ALL its defs replicate *)
          let dks = try Hashtbl.find def_keys x with Not_found -> [] in
          if List.for_all (fun dk -> Hashtbl.mem replicated_keys dk) dks then
            Hashtbl.replace replicated x ()
        end
      | K.Kstmt _ | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ()
    in
    K.iter_list scan_node tree
  done;
  {
    flags;
    tree;
    n_keys;
    stage_of;
    load_ord;
    prefetch_from;
    cut_head_keys;
    n_stages;
    parent_loops;
    def_keys;
    def_stages;
    replicated;
    replicated_keys;
    induction_of;
    params;
    key_node;
  }

(* ---------- phase C: uses, consumers, recompute, CV/DCE decisions ---------- *)

type use_origin = Ostmt | Obound of int (* loop key *) | Ocond of int (* if key *)

type decisions = {
  d_uses : (var, (int * use_origin) list ref) Hashtbl.t; (* var -> (stage, origin) *)
  d_needs : (int, int list ref) Hashtbl.t; (* control key -> stages *)
  d_recomputed : (int * var, unit) Hashtbl.t; (* (stage, var) *)
  d_converted : (int * int, var) Hashtbl.t; (* (stage, loop key) -> primary var *)
  d_exit_site : (int * int, int) Hashtbl.t; (* (stage, loop key) -> CV site *)
  d_merged : (int * int, unit) Hashtbl.t; (* (stage, ancestor loop key) emits nothing *)
  d_elided : (int * int, unit) Hashtbl.t; (* (stage, if key) *)
  d_barrier_before : (int, unit) Hashtbl.t; (* node keys preceded by a barrier *)
  mutable d_channels : channel list;
  d_var_channel : (var, channel) Hashtbl.t;
  (* (emitter stage, loop key) -> (queue, site) list: enq_ctrl after the loop *)
  d_cv_emits : (int * int, (int * int) list ref) Hashtbl.t;
  mutable d_next_queue : int;
  mutable d_next_ra : int;
  mutable d_ras : ra_config list;
}

let node_cond_vars node =
  match node with
  | K.Kif (_, _, c, _, _) -> K.expr_uses [] c
  | K.Kwhile (_, _, c, _) -> K.expr_uses [] c
  | K.Kfor (_, _, _, lo, hi, _) -> K.expr_uses (K.expr_uses [] lo) hi
  | K.Kstmt _ -> []

(* Innermost enclosing loop key, or -1 at top level. *)
let innermost ctx k =
  match Hashtbl.find ctx.parent_loops k with [] -> -1 | l :: _ -> l

let def_keys_of ctx x = try Hashtbl.find ctx.def_keys x with Not_found -> []

let nonrep_defs ctx x =
  List.filter (fun k -> not (Hashtbl.mem ctx.replicated_keys k)) (def_keys_of ctx x)

(* The stage that produces x for communication purposes. Normally all
   non-replicated defs live in one stage. A cursor initialized by a cut load
   in an early stage and updated locally by one later stage (SpMM's merge
   indices) is also fine: the early defs are communicated, the later ones
   are local. Anything else is rejected. *)
let def_stage_of ctx x =
  match nonrep_defs ctx x with
  | [] -> None
  | ks ->
    let stages = List.sort_uniq compare (List.map (fun k -> ctx.stage_of.(k)) ks) in
    (match stages with
    | [ s ] -> Some s
    | [ t; u ] when t < u ->
      let early_defs = List.filter (fun k -> ctx.stage_of.(k) = t) ks in
      if List.for_all (fun k -> Hashtbl.mem ctx.cut_head_keys k) early_defs then Some t
      else
        reject "variable %s is defined in multiple stages %s" x
          (String.concat "," (List.map string_of_int stages))
    | _ ->
      reject "variable %s is defined in multiple stages %s" x
        (String.concat "," (List.map string_of_int stages)))

(* The def keys that feed x's communication channel (the producer stage's). *)
let channel_defs ctx x =
  match def_stage_of ctx x with
  | None -> []
  | Some t -> List.filter (fun k -> ctx.stage_of.(k) = t) (nonrep_defs ctx x)

let decide ctx (cuts : Costmodel.cut list) : decisions =
  let d =
    {
      d_uses = Hashtbl.create 64;
      d_needs = Hashtbl.create 64;
      d_recomputed = Hashtbl.create 16;
      d_converted = Hashtbl.create 16;
      d_exit_site = Hashtbl.create 16;
      d_merged = Hashtbl.create 16;
      d_elided = Hashtbl.create 16;
      d_barrier_before = Hashtbl.create 4;
      d_channels = [];
      d_var_channel = Hashtbl.create 16;
      d_cv_emits = Hashtbl.create 8;
      d_next_queue = 0;
      d_next_ra = 0;
      d_ras = [];
    }
  in
  let add_use x s origin =
    let l =
      match Hashtbl.find_opt d.d_uses x with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace d.d_uses x l;
        l
    in
    if not (List.mem (s, origin) !l) then l := (s, origin) :: !l
  in
  let needs_of k =
    match Hashtbl.find_opt d.d_needs k with
    | Some l -> !l
    | None -> []
  in
  let add_need k s =
    let l =
      match Hashtbl.find_opt d.d_needs k with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace d.d_needs k l;
        l
    in
    if not (List.mem s !l) then begin
      l := s :: !l;
      true
    end
    else false
  in
  (* control ancestors of a key: all enclosing control nodes (loops and ifs).
     parent_loops has loops only, so recompute full ancestors here. *)
  let ancestors = Hashtbl.create ctx.n_keys in
  let parent_ifs = Hashtbl.create ctx.n_keys in
  let rec anc path ifs nodes =
    List.iter
      (fun node ->
        Hashtbl.replace ancestors (K.key node) path;
        Hashtbl.replace parent_ifs (K.key node) ifs;
        match node with
        | K.Kstmt _ -> ()
        | K.Kif (k, _, _, t, f) ->
          anc (k :: path) (k :: ifs) t;
          anc (k :: path) (k :: ifs) f
        | K.Kwhile (k, _, _, b) | K.Kfor (k, _, _, _, _, b) -> anc (k :: path) ifs b)
      nodes
  in
  anc [] [] ctx.tree;
  (* seed: simple stmt uses and needs *)
  K.iter_list
    (fun node ->
      match node with
      | K.Kstmt (k, stmt) ->
        let s =
          if Hashtbl.mem ctx.replicated_keys k then -2 (* everywhere *)
          else ctx.stage_of.(k)
        in
        if s >= 0 then begin
          List.iter (fun x -> add_use x s Ostmt) (K.stmt_uses stmt);
          List.iter (fun a -> ignore (add_need a s)) (Hashtbl.find ancestors k);
          match Hashtbl.find_opt ctx.prefetch_from k with
          | Some p ->
            (* the producer prefetches: it needs the index and the loops *)
            List.iter (fun x -> add_use x p Ostmt) (K.stmt_uses stmt);
            List.iter (fun a -> ignore (add_need a p)) (Hashtbl.find ancestors k)
          | None -> ()
        end
      | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ())
    ctx.tree;
  let local ~stage:s x =
    List.mem x ctx.params || Hashtbl.mem ctx.replicated x
    || Hashtbl.mem ctx.induction_of x
    || (match def_stage_of ctx x with Some t -> t = s | None -> true)
  in
  (* fixpoint: control uses and def-position needs *)
  let changed = ref true in
  while !changed do
    changed := false;
    (* an If that can break a loop must replicate into every stage that has
       the loop, or their copies would never exit *)
    K.iter_list
      (fun node ->
        match node with
        | K.Kif (k, _, _, tb, fb) ->
          let rec directly_breaks ns =
            List.exists
              (function
                | K.Kstmt (_, (Break | Exit_loops _)) -> true
                | K.Kstmt _ | K.Kwhile _ | K.Kfor _ -> false
                | K.Kif (_, _, _, t, f) -> directly_breaks t || directly_breaks f)
              ns
          in
          if directly_breaks tb || directly_breaks fb then (
            match Hashtbl.find ctx.parent_loops k with
            | l :: _ ->
              List.iter (fun s -> if add_need k s then changed := true) (needs_of l)
            | [] -> ())
        | K.Kstmt _ | K.Kwhile _ | K.Kfor _ -> ())
      ctx.tree;
    (* register control-expression uses for needing stages *)
    K.iter_list
      (fun node ->
        match node with
        | K.Kstmt _ -> ()
        | K.Kif (k, _, _, _, _) ->
          List.iter
            (fun s ->
              List.iter (fun x -> add_use x s (Ocond k)) (node_cond_vars node))
            (needs_of k)
        | K.Kwhile (k, _, _, _) ->
          List.iter
            (fun s -> List.iter (fun x -> add_use x s (Ocond k)) (node_cond_vars node))
            (needs_of k)
        | K.Kfor (k, _, _, _, _, _) ->
          List.iter
            (fun s -> List.iter (fun x -> add_use x s (Obound k)) (node_cond_vars node))
            (needs_of k))
      ctx.tree;
    (* consumers need the control context of each def position *)
    Hashtbl.iter
      (fun x uses ->
        List.iter
          (fun (s, _) ->
            if s >= 0 && not (local ~stage:s x) then
              List.iter
                (fun dk ->
                  List.iter
                    (fun a -> if add_need a s then changed := true)
                    (Hashtbl.find ancestors dk))
                (channel_defs ctx x))
          !uses)
      d.d_uses
  done;
  (* recompute (rematerialization) *)
  if ctx.flags.f_recompute then begin
    (* a def is recomputable in stage s only when its full control context
       is available there: no enclosing If, and every enclosing loop is one
       the stage replicates *)
    let candidate ~stage:s x =
      nonrep_defs ctx x <> []
      && List.for_all
           (fun k ->
             (match ctx.key_node.(k) with
             | Some (K.Kstmt (_, Assign (_, rhs))) -> K.expr_is_pure rhs
             | _ -> false)
             && Hashtbl.find parent_ifs k = []
             && List.for_all
                  (fun l -> List.mem s (needs_of l))
                  (Hashtbl.find ctx.parent_loops k))
           (nonrep_defs ctx x)
    in
    let consumer_stages x =
      match Hashtbl.find_opt d.d_uses x with
      | None -> []
      | Some uses ->
        List.sort_uniq compare
          (List.filter_map
             (fun (s, _) -> if s >= 0 && not (local ~stage:s x) then Some s else None)
             !uses)
    in
    let all_vars = Hashtbl.fold (fun x _ acc -> x :: acc) d.d_uses [] in
    List.iter
      (fun x ->
        List.iter
          (fun s ->
            if candidate ~stage:s x then begin
              (* availability closure for stage s *)
              let rec avail ?(seen = []) y =
                if List.mem y seen then false
                else
                  local ~stage:s y
                  || Hashtbl.mem d.d_recomputed (s, y)
                  || (candidate ~stage:s y
                     && List.for_all
                          (fun k ->
                            match ctx.key_node.(k) with
                            | Some (K.Kstmt (_, Assign (_, rhs))) ->
                              List.for_all
                                (fun z -> z = y || avail ~seen:(y :: seen) z)
                                (K.expr_uses [] rhs)
                            | _ -> false)
                          (nonrep_defs ctx y))
              in
              if avail x then Hashtbl.replace d.d_recomputed (s, x) ()
            end)
          (consumer_stages x))
      all_vars
  end;
  let consumed_by s x =
    (not (local ~stage:s x))
    && (not (Hashtbl.mem d.d_recomputed (s, x)))
    &&
    match Hashtbl.find_opt d.d_uses x with
    | None -> false
    | Some uses -> List.exists (fun (s', _) -> s' = s) !uses
  in
  (* barriers between sibling loop nests with cross-stage array deps *)
  if ctx.n_stages > 1 then begin
    let arrays_written nodes =
      let acc = ref [] in
      let rec go ns =
        List.iter
          (fun n ->
            match n with
            | K.Kstmt (k, (Store (a, _, _) | Atomic_min (a, _, _) | Atomic_add (a, _, _))) ->
              acc := (a, ctx.stage_of.(k)) :: !acc
            | K.Kstmt _ -> ()
            | K.Kif (_, _, _, t, f) ->
              go t;
              go f
            | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> go b)
          ns
      in
      go nodes;
      !acc
    in
    let arrays_read nodes =
      let acc = ref [] in
      let rec go_expr k e =
        match e with
        | Load (a, i) ->
          acc := (a, ctx.stage_of.(k)) :: !acc;
          go_expr k i
        | Binop (_, x, y) ->
          go_expr k x;
          go_expr k y
        | Unop (_, x) | Is_control x | Ctrl_payload x -> go_expr k x
        | Call (_, args) -> List.iter (go_expr k) args
        | Const _ | Var _ | Deq _ -> ()
      in
      let rec go ns =
        List.iter
          (fun n ->
            match n with
            | K.Kstmt (k, stmt) -> (
              match stmt with
              | Assign (_, e) | Enq (_, e) | Prefetch (_, e) -> go_expr k e
              | Store (_, i, v) | Atomic_min (_, i, v) | Atomic_add (_, i, v) ->
                go_expr k i;
                go_expr k v
              | Enq_indexed (_, a, b) ->
                go_expr k a;
                go_expr k b
              | _ -> ())
            | K.Kif (_, _, _, t, f) ->
              go t;
              go f
            | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> go b)
          ns
      in
      go nodes;
      !acc
    in
    let rec scan_siblings nodes =
      let loops =
        List.filter (function K.Kfor _ | K.Kwhile _ -> true | _ -> false) nodes
      in
      let conflicts n1 n2 =
        (* a write in n1 touching an array n2 accesses from another stage *)
        let reads2 = arrays_read [ n2 ] @ arrays_written [ n2 ] in
        List.exists
          (fun (a, t) ->
            List.exists (fun (a2, s2) -> a2 = a && s2 <> t && s2 >= 0 && t >= 0) reads2)
          (arrays_written [ n1 ])
      in
      List.iteri
        (fun j n2 ->
          let earlier = List.filteri (fun i _ -> i < j) loops in
          if List.exists (fun n1 -> conflicts n1 n2) earlier then
            Hashtbl.replace d.d_barrier_before (K.key n2) ())
        loops;
      (* wrap-around: a later sibling's writes feeding an earlier sibling's
         reads in the next iteration of the enclosing loop *)
      (match loops with
      | first :: _ :: _ ->
        let later = List.tl loops in
        if List.exists (fun n1 -> conflicts n1 first) later then
          Hashtbl.replace d.d_barrier_before (K.key first) ()
      | _ -> ());
      List.iter
        (function
          | K.Kif (_, _, _, t, f) ->
            scan_siblings t;
            scan_siblings f
          | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> scan_siblings b
          | K.Kstmt _ -> ())
        nodes
    in
    scan_siblings ctx.tree
  end;
  (* Is x still communicated to s given decisions so far? A use that is
     only the bound of an already-converted loop no longer counts. *)
  let still_consumed s x =
    consumed_by s x
    &&
    match Hashtbl.find_opt d.d_uses x with
    | None -> false
    | Some uses ->
      List.exists
        (fun (s', o) ->
          s' = s
          &&
          match o with
          | Ostmt -> true
          | Obound l -> not (Hashtbl.mem d.d_converted (s, l))
          | Ocond i -> not (Hashtbl.mem d.d_elided (s, i)))
        !uses
  in
  (* CV conversion: consumer loops become while(true) terminated by in-band
     control values. Decided innermost-first so that an outer loop's primary
     payload is a value the stage still receives. *)
  if ctx.flags.f_cv then begin
    let rec post_order nodes =
      List.iter
        (fun node ->
          (match node with
          | K.Kif (_, _, _, t, f) ->
            post_order t;
            post_order f
          | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> post_order b
          | K.Kstmt _ -> ());
          match node with
          | K.Kfor (k, site, v, lo, hi, _) ->
            let bound_vars = K.expr_uses (K.expr_uses [] lo) hi in
            List.iter
              (fun s ->
                (* convert only loops whose bounds would need a queue *)
                let nonlocal_bounds =
                  List.exists (fun x -> consumed_by s x) bound_vars
                in
                (* induction var used by stage s? then keep the For *)
                let v_used =
                  match Hashtbl.find_opt d.d_uses v with
                  | None -> false
                  | Some uses -> List.exists (fun (s', o) -> s' = s && o = Ostmt) !uses
                in
                if nonlocal_bounds && not v_used then begin
                  (* primary payload: the first value the stage still
                     receives per iteration of this loop *)
                  let primary =
                    Hashtbl.fold
                      (fun x _ best ->
                        if still_consumed s x then
                          match channel_defs ctx x with
                          | dk :: _ when innermost ctx dk = k && not (List.mem x bound_vars)
                            -> (
                            match best with
                            | Some (bk, _) when bk <= dk -> best
                            | _ -> Some (dk, x))
                          | _ -> best
                        else best)
                      d.d_uses None
                  in
                  match primary with
                  | Some (_, x) ->
                    Hashtbl.replace d.d_converted (s, k) x;
                    Hashtbl.replace d.d_exit_site (s, k) site
                  | None -> ()
                end)
              (needs_of k)
          | K.Kstmt _ | K.Kif _ | K.Kwhile _ -> ())
        nodes
    in
    post_order ctx.tree
  end;
  (* DCE: merge converted loops upward through ancestors whose only content
     (for this stage) is the converted loop and its dropped bounds. *)
  if ctx.flags.f_cv && ctx.flags.f_dce then begin
    let content_at s p ~excluding_loop:l =
      (* any simple stmt of stage s, or def position consumed by s, whose
         innermost loop is p and which is not inside l's subtree *)
      let inside_l k = List.mem l (Hashtbl.find ctx.parent_loops k) || k = l in
      let found = ref false in
      K.iter_list
        (fun node ->
          match node with
          | K.Kstmt (k, stmt) when innermost ctx k = p && not (inside_l k) -> (
            if (not !found) && ctx.stage_of.(k) = s && not (Hashtbl.mem ctx.replicated_keys k)
            then found := true;
            if not !found then
              match K.stmt_def stmt with
              | Some x ->
                if consumed_by s x then begin
                  (* a dropped bound of the converted loop doesn't count *)
                  let is_dropped_bound =
                    match ctx.key_node.(l) with
                    | Some (K.Kfor (_, _, _, lo, hi, _)) ->
                      Hashtbl.mem d.d_converted (s, l)
                      && List.mem x (K.expr_uses (K.expr_uses [] lo) hi)
                    | _ -> false
                  in
                  if not is_dropped_bound then found := true
                end
              | None -> ())
          | K.Kstmt _ | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ())
        ctx.tree;
      !found
    in
    let converted = Hashtbl.fold (fun k v acc -> (k, v) :: acc) d.d_converted [] in
    List.iter
      (fun ((s, l), _primary) ->
        (* walk up through Kfor ancestors *)
        (* a barrier anywhere at the current level must fire once per
           iteration of the parent, so it blocks merging upward *)
        let barrier_at_level p cur =
          Hashtbl.fold
            (fun bk () acc -> acc || bk = cur || innermost ctx bk = p)
            d.d_barrier_before false
        in
        let rec up cur =
          match Hashtbl.find ctx.parent_loops cur with
          | p :: _ -> (
            match ctx.key_node.(p) with
            | Some (K.Kfor (_, psite, _, _, _, _))
              when List.mem s (needs_of p)
                   && (not (content_at s p ~excluding_loop:cur))
                   && not (barrier_at_level p cur) ->
              Hashtbl.replace d.d_merged (s, p) ();
              Hashtbl.replace d.d_exit_site (s, l) psite;
              up p
            | _ -> ())
          | [] -> ()
        in
        up l)
      converted
  end;
  (* Consistency: every stage that converts the same loop must exit it at
     the same control-value level, or producers and consumers disagree on
     how many control values flow. On disagreement, demote all of them to
     the unmerged (per-loop) level. *)
  if ctx.flags.f_cv && ctx.flags.f_dce then begin
    let by_loop = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (s, l) _ ->
        let cur = try Hashtbl.find by_loop l with Not_found -> [] in
        Hashtbl.replace by_loop l (s :: cur))
      d.d_converted;
    Hashtbl.iter
      (fun l stages ->
        let sites =
          List.sort_uniq compare
            (List.map (fun s -> Hashtbl.find d.d_exit_site (s, l)) stages)
        in
        if List.length sites > 1 then begin
          let own_site =
            match ctx.key_node.(l) with
            | Some (K.Kfor (_, site, _, _, _, _)) -> site
            | _ -> l
          in
          List.iter
            (fun s ->
              Hashtbl.replace d.d_exit_site (s, l) own_site;
              List.iter
                (fun p -> Hashtbl.remove d.d_merged (s, p))
                (Hashtbl.find ctx.parent_loops l))
            stages
        end)
      by_loop
  end;
  (* DCE: conditional elision for consumers whose per-iteration payloads are
     all enqueued under the producer's condition. *)
  if ctx.flags.f_cv && ctx.flags.f_dce then begin
    K.iter_list
      (fun node ->
        match node with
        | K.Kif (k, _, cond, _tb, fb) when fb = [] ->
          let cond_vars = K.expr_uses [] cond in
          List.iter
            (fun s ->
              let enclosing_loop = innermost ctx k in
              let loop_converted =
                enclosing_loop >= 0 && Hashtbl.mem d.d_converted (s, enclosing_loop)
              in
              let cond_nonlocal = List.exists (fun x -> consumed_by s x) cond_vars in
              if loop_converted && cond_nonlocal then begin
                (* every channel consumed by s at this loop level must have
                   its defs inside this If, and s must own no simple stmts
                   at the loop level outside the If *)
                let ok = ref true in
                K.iter_list
                  (fun n2 ->
                    match n2 with
                    | K.Kstmt (k2, stmt2)
                      when innermost ctx k2 = enclosing_loop
                           && not (List.mem k (Hashtbl.find parent_ifs k2)) -> (
                      if ctx.stage_of.(k2) = s && not (Hashtbl.mem ctx.replicated_keys k2)
                      then ok := false;
                      match K.stmt_def stmt2 with
                      | Some x ->
                        if consumed_by s x then begin
                          let is_bound =
                            match ctx.key_node.(enclosing_loop) with
                            | Some (K.Kfor (_, _, _, lo, hi, _)) ->
                              List.mem x (K.expr_uses (K.expr_uses [] lo) hi)
                            | _ -> false
                          in
                          if not is_bound then ok := false
                        end
                      | None -> ())
                    | _ -> ())
                  ctx.tree;
                (* ...and s must actually have content inside the If *)
                let has_content = ref false in
                K.iter_list
                  (fun n2 ->
                    match n2 with
                    | K.Kstmt (k2, _)
                      when List.mem k (Hashtbl.find parent_ifs k2)
                           && (ctx.stage_of.(k2) = s
                              || match K.stmt_def (match n2 with K.Kstmt (_, st) -> st | _ -> assert false) with
                                 | Some x -> consumed_by s x
                                 | None -> false) ->
                      has_content := true
                    | _ -> ())
                  ctx.tree;
                if !ok && !has_content then Hashtbl.replace d.d_elided (s, k) ()
              end)
            (needs_of k)
        | K.Kstmt _ | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ())
      ctx.tree
  end;
  (* Final consumer sets, with converted-loop bounds and elided-If conds
     dropped. *)
  let final_consumers x =
    match Hashtbl.find_opt d.d_uses x with
    | None -> []
    | Some uses ->
      List.sort_uniq compare
        (List.filter_map
           (fun (s, origin) ->
             if s < 0 || local ~stage:s x || Hashtbl.mem d.d_recomputed (s, x) then None
             else
               match origin with
               | Obound l when Hashtbl.mem d.d_converted (s, l) ->
                 (* still consumed if used elsewhere by s *)
                 if
                   List.exists
                     (fun (s', o') ->
                       s' = s
                       && o' <> origin
                       &&
                       match o' with
                       | Obound l' -> not (Hashtbl.mem d.d_converted (s, l'))
                       | Ocond i' -> not (Hashtbl.mem d.d_elided (s, i'))
                       | Ostmt -> true)
                     !uses
                 then Some s
                 else None
               | Ocond i when Hashtbl.mem d.d_elided (s, i) ->
                 if
                   List.exists
                     (fun (s', o') ->
                       s' = s
                       && o' <> origin
                       &&
                       match o' with
                       | Obound l' -> not (Hashtbl.mem d.d_converted (s, l'))
                       | Ocond i' -> not (Hashtbl.mem d.d_elided (s, i'))
                       | Ostmt -> true)
                     !uses
                 then Some s
                 else None
               | Obound l -> (
                 (* needed for the For bound if s emits the For *)
                 ignore l;
                 Some s)
               | Ocond _ | Ostmt -> Some s)
           !uses)
  in
  (* build channels: one per communicated var, merging cut groups *)
  let fresh_queue () =
    let q = d.d_next_queue in
    d.d_next_queue <- q + 1;
    q
  in
  let ord_to_key = Hashtbl.create 16 in
  K.iter_list
    (fun node ->
      match node with
      | K.Kstmt (k, _) when ctx.load_ord.(k) >= 0 ->
        Hashtbl.replace ord_to_key ctx.load_ord.(k) k
      | _ -> ())
    ctx.tree;
  (* group id for cut-group merging: var -> cut head ordinal *)
  let cut_group_of x =
    let dks = channel_defs ctx x in
    match dks with
    | [ dk ] when Hashtbl.mem ctx.cut_head_keys dk ->
      let o = ctx.load_ord.(dk) in
      List.find_map
        (fun (c : Costmodel.cut) ->
          if (not c.Costmodel.cut_prefetch) && List.mem o c.Costmodel.cut_loads then
            Some (List.hd c.Costmodel.cut_loads)
          else None)
        cuts
    | _ -> None
  in
  let all_vars =
    List.sort_uniq compare (Hashtbl.fold (fun x _ acc -> x :: acc) d.d_uses [])
  in
  let communicated =
    List.filter_map
      (fun x ->
        match final_consumers x with
        | [] -> None
        | consumers -> (
          match def_stage_of ctx x with
          | None -> None (* params/replicated only *)
          | Some t -> Some (x, t, consumers)))
      all_vars
  in
  (* merge by cut group when consumer sets coincide *)
  let grouped : (int option * int * int list, (var * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (x, t, consumers) ->
      let g = cut_group_of x in
      let key = (g, t, consumers) in
      let key = if g = None then (Some (-1 - Hashtbl.hash x), t, consumers) else key in
      let l =
        match Hashtbl.find_opt grouped key with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace grouped key l;
          l
      in
      let dk = List.hd (channel_defs ctx x) in
      l := (x, dk) :: !l)
    communicated;
  Hashtbl.iter
    (fun (_, t, consumers) members ->
      let members = List.sort (fun (_, a) (_, b) -> compare a b) !members in
      let vars = List.map fst members in
      let def_keys = List.concat_map (fun (x, _) -> channel_defs ctx x) members in
      let forward = List.filter (fun s -> s > t) consumers in
      let backward = List.filter (fun s -> s < t) consumers in
      let chain = List.map (fun s -> (s, fresh_queue ())) forward in
      let back = List.map (fun s -> (s, fresh_queue ())) backward in
      let ch =
        {
          ch_vars = vars;
          ch_def_stage = t;
          ch_def_keys = List.sort compare def_keys;
          ch_chain = chain;
          ch_back = back;
          ch_ra = None;
          ch_ra_in = -1;
        }
      in
      d.d_channels <- ch :: d.d_channels;
      List.iter (fun x -> Hashtbl.replace d.d_var_channel x ch) vars)
    grouped;
  (* RA assignment *)
  if ctx.flags.f_ra then
    List.iter
      (fun ch ->
        if d.d_next_ra < 4 && ch.ch_back = [] && ch.ch_chain <> [] then begin
          let arrays =
            List.filter_map
              (fun k ->
                match ctx.key_node.(k) with
                | Some (K.Kstmt (_, Assign (_, Load (a, _)))) when Hashtbl.mem ctx.cut_head_keys k ->
                  Some a
                | _ -> None)
              ch.ch_def_keys
          in
          let producer_uses_locally =
            List.exists
              (fun x ->
                match Hashtbl.find_opt d.d_uses x with
                | None -> false
                | Some uses -> List.exists (fun (s, _) -> s = ch.ch_def_stage) !uses)
              ch.ch_vars
          in
          if
            List.length arrays = List.length ch.ch_def_keys
            && arrays <> []
            && List.for_all (fun a -> a = List.hd arrays) arrays
            && not producer_uses_locally
          then begin
            let ra_id = d.d_next_ra in
            d.d_next_ra <- ra_id + 1;
            let q_in = fresh_queue () in
            ch.ch_ra <- Some ra_id;
            ch.ch_ra_in <- q_in;
            d.d_ras <-
              {
                ra_id;
                ra_in = q_in;
                ra_out = snd (List.hd ch.ch_chain);
                ra_array = List.hd arrays;
                ra_mode = Ra_indirect;
              }
              :: d.d_ras
          end
        end)
      d.d_channels;
  (* CV emission plan: the hop feeding each converted consumer re-emits the
     control value after its own copy of the effective loop. *)
  Hashtbl.iter
    (fun (s, l) primary ->
      match Hashtbl.find_opt d.d_var_channel primary with
      | None -> ()
      | Some ch ->
        let site = Hashtbl.find d.d_exit_site (s, l) in
        (* effective loop key for emission position *)
        let rec effective cur =
          match Hashtbl.find ctx.parent_loops cur with
          | p :: _ when Hashtbl.mem d.d_merged (s, p) -> effective p
          | _ -> cur
        in
        let eff = effective l in
        (* find the hop before s in ch's chain *)
        let rec hop_before prev = function
          | [] -> None
          | (s', q) :: rest -> if s' = s then Some (prev, q) else hop_before (Some s') rest
        in
        (match hop_before None ch.ch_chain with
        | Some (prev_stage, q_into_s) ->
          let emitter, target =
            match (prev_stage, ch.ch_ra) with
            | None, Some _ -> (ch.ch_def_stage, ch.ch_ra_in)
            | None, None -> (ch.ch_def_stage, q_into_s)
            | Some p, _ -> (p, q_into_s)
          in
          let key = (emitter, eff) in
          let l' =
            match Hashtbl.find_opt d.d_cv_emits key with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace d.d_cv_emits key l;
              l
          in
          if not (List.mem (target, site) !l') then l' := (target, site) :: !l'
        | None -> ()))
    d.d_converted;
  d

(* ---------- phase D: per-stage emission ---------- *)

type stage_acc = {
  mutable sa_handlers : handler list;
}

let queue_into ch s =
  match List.assoc_opt s ch.ch_chain with
  | Some q -> Some q
  | None -> List.assoc_opt s ch.ch_back

let next_link ch s =
  let rec go = function
    | (s', _) :: ((_, q2) :: _ as rest) -> if s' = s then Some q2 else go rest
    | _ -> None
  in
  go ch.ch_chain

let emit ctx (d : decisions) ~(orig : pipeline) : pipeline =
  let needs_of k =
    match Hashtbl.find_opt d.d_needs k with Some l -> !l | None -> []
  in
  let cv_emits_after s k =
    match Hashtbl.find_opt d.d_cv_emits (s, k) with
    | Some l -> List.rev_map (fun (q, site) -> Enq_ctrl (q, site)) !l
    | None -> []
  in
  let emit_stage s =
    let acc = { sa_handlers = [] } in
    let rec emit_nodes nodes = List.concat_map emit_node nodes
    and emit_node node =
      let k = K.key node in
      let barrier = if Hashtbl.mem d.d_barrier_before k then [ Barrier k ] else [] in
      let core =
        match node with
        | K.Kstmt (_, stmt) -> emit_stmt k stmt
        | K.Kif (_, site, cond, tb, fb) ->
          if Hashtbl.mem d.d_elided (s, k) then emit_nodes tb
          else if List.mem s (needs_of k) then
            [ If (site, cond, emit_nodes tb, emit_nodes fb) ]
          else []
        | K.Kwhile (_, site, cond, body) ->
          if List.mem s (needs_of k) then
            [ While (site, cond, emit_nodes body) ] @ cv_emits_after s k
          else []
        | K.Kfor (_, site, v, lo, hi, body) ->
          if Hashtbl.mem d.d_merged (s, k) then emit_nodes body @ cv_emits_after s k
          else if Hashtbl.mem d.d_converted (s, k) then begin
            let primary = Hashtbl.find d.d_converted (s, k) in
            let exit_site = Hashtbl.find d.d_exit_site (s, k) in
            let ch =
              match Hashtbl.find_opt d.d_var_channel primary with
              | Some ch -> ch
              | None -> reject "converted loop %d: primary %s has no channel" k primary
            in
            let q =
              match queue_into ch s with
              | Some q -> q
              | None -> reject "converted loop %d: no inbound queue for %s" k primary
            in
            let inner = emit_nodes body in
            (* the primary dequeue must come first *)
            (match inner with
            | Assign (x, Deq q') :: rest when x = primary && q' = q ->
              if ctx.flags.f_handlers then begin
                let cv = Printf.sprintf "__cv%d" q in
                acc.sa_handlers <-
                  {
                    h_queue = q;
                    h_cv_var = cv;
                    h_body =
                      [
                        If
                          ( fresh_site (),
                            Binop (Eq, Ctrl_payload (Var cv), Const (Vint exit_site)),
                            [ Exit_loops 1 ],
                            [] );
                      ];
                  }
                  :: acc.sa_handlers;
                [ While (site, Const (Vint 1), Assign (x, Deq q) :: rest) ]
                @ cv_emits_after s k
              end
              else begin
                let body' =
                  [
                    Assign (x, Deq q);
                    If
                      ( fresh_site (),
                        Is_control (Var x),
                        [
                          If
                            ( fresh_site (),
                              Binop (Eq, Ctrl_payload (Var x), Const (Vint exit_site)),
                              [ Break ],
                              [] );
                        ],
                        rest );
                  ]
                in
                [ While (site, Const (Vint 1), body') ] @ cv_emits_after s k
              end
            | _ ->
              reject "converted loop %d: primary dequeue of %s is not first" k primary)
          end
          else if List.mem s (needs_of k) then
            [ For (site, v, lo, hi, emit_nodes body) ] @ cv_emits_after s k
          else []
      in
      barrier @ core
    and emit_stmt k stmt =
      match stmt with
      | Break | Exit_loops _ ->
        (* structural: reached only inside control this stage emits *)
        [ stmt ]
      | Seq_marker _ -> []
      | _ -> (
        let replicated = Hashtbl.mem ctx.replicated_keys k in
        let prefetch_here =
          match Hashtbl.find_opt ctx.prefetch_from k with
          | Some p when p = s -> true
          | _ -> false
        in
        let owner = ctx.stage_of.(k) = s in
        let defvar = K.stmt_def stmt in
        let ch = Option.bind defvar (Hashtbl.find_opt d.d_var_channel) in
        let pieces = ref [] in
        if replicated then pieces := [ stmt ]
        else begin
          if prefetch_here then begin
            match stmt with
            | Assign (_, Load (arr, idx)) -> pieces := !pieces @ [ Prefetch (arr, idx) ]
            | _ -> ()
          end;
          if owner then begin
            (* producer side *)
            match (defvar, ch) with
            | Some x, Some ch when List.mem k ch.ch_def_keys ->
              let is_ra_def =
                ch.ch_ra <> None && Hashtbl.mem ctx.cut_head_keys k
              in
              if is_ra_def then begin
                match stmt with
                | Assign (_, Load (_, idx)) ->
                  pieces := !pieces @ [ Enq (ch.ch_ra_in, idx) ]
                | _ -> reject "RA def %d is not a load" k
              end
              else begin
                pieces := !pieces @ [ stmt ];
                (match ch.ch_chain with
                | (_, q1) :: _ -> pieces := !pieces @ [ Enq (q1, Var x) ]
                | [] -> ());
                List.iter
                  (fun (_, qb) -> pieces := !pieces @ [ Enq (qb, Var x) ])
                  ch.ch_back
              end
            | _ -> pieces := !pieces @ [ stmt ]
          end
          else begin
            (* consumer / recompute side *)
            match defvar with
            | Some x -> (
              let recomputed = Hashtbl.mem d.d_recomputed (s, x) in
              if recomputed && not (Hashtbl.mem ctx.replicated_keys k) then
                pieces := !pieces @ [ stmt ]
              else
                match ch with
                | Some ch when List.mem k ch.ch_def_keys -> (
                  match queue_into ch s with
                  | Some q ->
                    pieces := !pieces @ [ Assign (x, Deq q) ];
                    (match next_link ch s with
                    | Some q' -> pieces := !pieces @ [ Enq (q', Var x) ]
                    | None -> ())
                  | None -> ())
                | _ -> ())
            | None -> ()
          end
        end;
        !pieces)
    in
    let body = emit_nodes ctx.tree in
    { s_name = Printf.sprintf "s%d" s; s_body = body; s_handlers = acc.sa_handlers }
  in
  let stages = List.init ctx.n_stages emit_stage in
  let queues = List.init d.d_next_queue (fun q -> { q_id = q; q_capacity = 24 }) in
  {
    orig with
    p_name = orig.p_name ^ "_phloem";
    p_stages = stages;
    p_queues = queues;
    p_ras = List.rev d.d_ras;
  }

(* ---------- driver ---------- *)

(* Decouple a serial pipeline at the given cuts. *)
let split ?(flags = all_passes) (serial : pipeline) (cuts : Costmodel.cut list) : pipeline =
  let body =
    match serial.p_stages with
    | [ st ] -> st.s_body
    | _ -> reject "split expects a single-stage (serial) pipeline"
  in
  let tree, n_keys = Ktree.of_body (Normalize.body body) in
  let params = List.map fst serial.p_params in
  let ctx = build_context ~flags ~params tree n_keys cuts in
  if ctx.n_stages < 2 then reject "no cuts selected";
  let d = decide ctx cuts in
  emit ctx d ~orig:serial
