(* Decoupling-point selection (paper Sec. V): rank memory accesses by
   predicted cost x frequency.

   - Cost depends on the access pattern: indirect accesses are expensive,
     scans by an induction variable are cheap, and an access adjacent to an
     earlier one on the same array (index differing by a constant) is almost
     free and is grouped with it so both land in the same stage.
   - Frequency is approximated by loop depth: an access in the innermost
     loop runs once per edge/nonzero, one loop out once per vertex/row.

   Cuts whose load would race with a later store to the same array in the
   same iteration are marked prefetch-only (paper Fig. 4): the producer
   prefetches, the consumer re-loads. *)

open Phloem_ir.Types

type access_kind = Sequential | Scan | Indirect

type load_site = {
  ls_ordinal : int; (* position among loads, program order *)
  ls_array : array_id;
  ls_depth : int;
  ls_kind : access_kind;
  ls_group_head : int; (* ordinal of the first load of its adjacency group *)
  ls_prefetch_only : bool;
  ls_score : float;
}

type cut = {
  cut_loads : int list; (* ordinals of the adjacency group, ascending *)
  cut_prefetch : bool;
  cut_score : float;
}

let depth_weight depth = (8.0 ** float_of_int depth)

let base_cost = function Indirect -> 4.0 | Scan -> 1.5 | Sequential -> 1.0

(* Does [body] (the rest of an iteration after the load) store to [arr]? *)
let rec stores_to arr (nodes : Ktree.t list) =
  List.exists
    (fun n ->
      match n with
      | Ktree.Kstmt (_, (Store (a, _, _) | Atomic_min (a, _, _) | Atomic_add (a, _, _))) ->
        a = arr
      | Ktree.Kstmt _ -> false
      | Ktree.Kif (_, _, _, t, f) -> stores_to arr t || stores_to arr f
      | Ktree.Kwhile (_, _, _, b) | Ktree.Kfor (_, _, _, _, _, b) -> stores_to arr b)
    nodes

(* Analyze a keyed tree; returns load sites in program order. *)
let analyze (tree : Ktree.t list) : load_site list =
  let sites = ref [] in
  let ordinal = ref 0 in
  (* last load on each array within the current straight-line region:
     (array -> ordinal, index base var). Reset on entering a loop body. *)
  let rec walk ~depth ~inductions ~defs ~region nodes =
    (* [defs]: var -> rhs expr, for detecting index = base + const
       [region]: (array -> (ordinal, index_expr)) assoc list ref *)
    List.iteri
      (fun i node ->
        let rest = List.filteri (fun j _ -> j > i) nodes in
        match node with
        | Ktree.Kstmt (_, stmt) -> (
          (match Ktree.stmt_def stmt with
          | Some x ->
            (match stmt with
            | Assign (_, rhs) -> Hashtbl.replace defs x rhs
            | _ -> ())
          | None -> ());
          match Ktree.stmt_load stmt with
          | None -> ()
          | Some (arr, idx) ->
            let o = !ordinal in
            incr ordinal;
            (* classify the index *)
            let rec base_of ?(fuel = 8) e =
              match e with
              | Var x when fuel > 0 -> (
                match Hashtbl.find_opt defs x with
                | Some (Binop (Add, Var y, Const _)) when y <> x ->
                  base_of ~fuel:(fuel - 1) (Var y)
                | Some (Binop (Add, Const _, Var y)) when y <> x ->
                  base_of ~fuel:(fuel - 1) (Var y)
                | _ -> Some x)
              | Var x -> Some x
              | Const _ -> None
              | _ -> None
            in
            let base_of e = base_of e in
            let kind =
              match idx with
              | Const _ -> Sequential
              | _ -> (
                match base_of idx with
                | Some x when List.mem x inductions -> Scan
                | Some _ -> Indirect
                | None -> Sequential)
            in
            (* adjacency grouping: same array, same index base *)
            let group_head =
              match List.assoc_opt arr !region with
              | Some (prev_ord, prev_idx)
                when base_of prev_idx <> None && base_of prev_idx = base_of idx ->
                prev_ord
              | _ -> o
            in
            region := (arr, (group_head, idx)) :: List.remove_assoc arr !region;
            let prefetch_only = stores_to arr rest in
            let score =
              if group_head <> o then 0.0 (* grouped with its head *)
              else base_cost kind *. depth_weight depth
            in
            {
              ls_ordinal = o;
              ls_array = arr;
              ls_depth = depth;
              ls_kind = kind;
              ls_group_head = group_head;
              ls_prefetch_only = prefetch_only;
              ls_score = score;
            }
            |> fun site -> sites := site :: !sites)
        | Ktree.Kif (_, _, _, t, f) ->
          walk ~depth ~inductions ~defs ~region t;
          walk ~depth ~inductions ~defs ~region f
        | Ktree.Kwhile (_, _, _, b) ->
          let region' = ref [] in
          walk ~depth:(depth + 1) ~inductions ~defs ~region:region' b
        | Ktree.Kfor (_, _, v, _, _, b) ->
          let region' = ref [] in
          walk ~depth:(depth + 1) ~inductions:(v :: inductions) ~defs ~region:region' b)
      nodes
  in
  walk ~depth:0 ~inductions:[] ~defs:(Hashtbl.create 32) ~region:(ref []) tree;
  List.rev !sites

(* Candidate cuts, best first. Each adjacency group yields one cut whose
   score is the head's score plus prefetch demotion (a prefetch-only cut is
   less profitable: the consumer still pays the load). *)
let candidates (tree : Ktree.t list) : cut list =
  let sites = analyze tree in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let head = s.ls_group_head in
      let cur = try Hashtbl.find groups head with Not_found -> [] in
      Hashtbl.replace groups head (s :: cur))
    sites;
  let cuts =
    Hashtbl.fold
      (fun _head members acc ->
        let members = List.sort (fun a b -> compare a.ls_ordinal b.ls_ordinal) members in
        let head = List.hd members in
        if head.ls_score <= 0.0 then acc
        else
          let prefetch = List.exists (fun m -> m.ls_prefetch_only) members in
          {
            cut_loads = List.map (fun m -> m.ls_ordinal) members;
            cut_prefetch = prefetch;
            cut_score = (head.ls_score *. if prefetch then 0.6 else 1.0);
          }
          :: acc)
      groups []
  in
  List.sort (fun a b -> compare b.cut_score a.cut_score) cuts

(* The static compilation flow: the (n-1) best cuts for an n-stage pipeline,
   returned in program order. *)
let select_static (tree : Ktree.t list) ~stages : cut list =
  let cs = candidates tree in
  let chosen = List.filteri (fun i _ -> i < stages - 1) cs in
  List.sort (fun a b -> compare (List.hd a.cut_loads) (List.hd b.cut_loads)) chosen
