(** Decoupling-point selection (paper Sec. V): ranks memory accesses by
    predicted cost x frequency.

    Cost depends on the access pattern (indirect > scan > sequential);
    frequency is weighted by loop depth. Accesses adjacent to an earlier
    access on the same array (index differing by a constant, like
    [nodes\[v\]]/[nodes\[v+1\]]) group into one cut so they share a stage
    and, later, a reference accelerator. A load followed by a store to the
    same array in the same iteration is marked prefetch-only (paper
    Fig. 4): decoupling there may prefetch but the consumer re-loads. *)

type access_kind = Sequential | Scan | Indirect

type load_site = {
  ls_ordinal : int;  (** position among loads, program order *)
  ls_array : Phloem_ir.Types.array_id;
  ls_depth : int;  (** loop nesting depth *)
  ls_kind : access_kind;
  ls_group_head : int;  (** ordinal of its adjacency group's first load *)
  ls_prefetch_only : bool;
  ls_score : float;
}

type cut = {
  cut_loads : int list;  (** load ordinals of the group, ascending *)
  cut_prefetch : bool;
  cut_score : float;
}

val analyze : Ktree.t list -> load_site list
(** All load sites of a normalized kernel, in program order. *)

val candidates : Ktree.t list -> cut list
(** Candidate cuts, best first. *)

val select_static : Ktree.t list -> stages:int -> cut list
(** The top (stages-1) cuts, re-sorted into program order. *)
