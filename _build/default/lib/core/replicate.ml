(* Pipeline replication and data-centric distribution (paper Sec. IV-C,
   [#pragma replicate] / [#pragma distribute]).

   Replication clones a pipeline R times with disjoint queue/RA namespaces.
   Arrays are shared by default; [private_arrays] get per-replica copies
   (the replicate_arguments() role). [distribute] rewrites the enqueues into
   one crossing queue so each value is routed to the replica chosen by a
   selector (e.g. low bits of the neighbor id), which splits the pipeline
   into source-centric and destination-centric halves. Control values on a
   distributed queue fan out to every replica, and consumers wait for one
   control value per producer replica before ending an iteration. *)

open Phloem_ir.Types

type spec = {
  r_replicas : int;
  r_private_arrays : string list;
  r_private_params : (var * (int -> value)) list;
      (* per-replica parameter values (e.g. the replica id, per-replica
         work ranges); shadow the base pipeline's params *)
  r_distribute : (queue_id * (expr -> expr)) option;
      (* crossing queue and selector from the enqueued value to a replica *)
}

let private_name name k = Printf.sprintf "%s__r%d" name k

let rec rewrite_expr ~qmap ~amap (e : expr) : expr =
  let rx = rewrite_expr ~qmap ~amap in
  match e with
  | Const _ | Var _ -> e
  | Binop (op, a, b) -> Binop (op, rx a, rx b)
  | Unop (op, a) -> Unop (op, rx a)
  | Load (arr, i) -> Load (amap arr, rx i)
  | Deq q -> Deq (qmap q)
  | Is_control a -> Is_control (rx a)
  | Ctrl_payload a -> Ctrl_payload (rx a)
  | Call (f, args) -> Call (f, List.map rx args)

let rec rewrite_stmt ~qmap ~amap ~enq_hook (s : stmt) : stmt list =
  let rx = rewrite_expr ~qmap ~amap in
  let rb = rewrite_block ~qmap ~amap ~enq_hook in
  match s with
  | Assign (x, e) -> [ Assign (x, rx e) ]
  | Store (a, i, v) -> [ Store (amap a, rx i, rx v) ]
  | Atomic_min (a, i, v) -> [ Atomic_min (amap a, rx i, rx v) ]
  | Atomic_add (a, i, v) -> [ Atomic_add (amap a, rx i, rx v) ]
  | Prefetch (a, i) -> [ Prefetch (amap a, rx i) ]
  | Enq (q, e) -> enq_hook q (rx e)
  | Enq_ctrl (q, cv) -> (
    match enq_hook q (Const (Vctrl cv)) with
    | [ Enq (q', _) ] -> [ Enq_ctrl (q', cv) ]
    | stmts ->
      (* distributed control: fan out to every replica's queue *)
      List.concat_map
        (function
          | Enq_indexed (qs, _, _) ->
            Array.to_list qs |> List.map (fun q' -> Enq_ctrl (q', cv))
          | other -> [ other ])
        stmts)
  | Enq_indexed (qs, sel, e) -> [ Enq_indexed (Array.map qmap qs, rx sel, rx e) ]
  | If (site, c, t, f) -> [ If (site, rx c, rb t, rb f) ]
  | While (site, c, b) -> [ While (site, rx c, rb b) ]
  | For (site, v, lo, hi, b) -> [ For (site, v, rx lo, rx hi, rb b) ]
  | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> [ s ]

and rewrite_block ~qmap ~amap ~enq_hook stmts =
  List.concat_map (rewrite_stmt ~qmap ~amap ~enq_hook) stmts

let apply (p : pipeline) (spec : spec) : pipeline =
  let r = spec.r_replicas in
  if r < 1 then invalid_arg "Replicate.apply: replicas < 1";
  let nq = 1 + List.fold_left (fun acc q -> max acc q.q_id) 0 p.p_queues in
  let nra = List.length p.p_ras in
  let replica k =
    let qmap q = q + (k * nq) in
    let amap a = if List.mem a spec.r_private_arrays then private_name a k else a in
    let enq_hook q e =
      match spec.r_distribute with
      | Some (dq, selector) when q = dq ->
        let qs = Array.init r (fun k' -> dq + (k' * nq)) in
        [ Enq_indexed (qs, selector e, e) ]
      | _ -> [ Enq (qmap q, e) ]
    in
    let stages =
      List.map
        (fun st ->
          let handlers =
            List.map
              (fun h ->
                let body = rewrite_block ~qmap ~amap ~enq_hook h.h_body in
                (* a distributed queue delivers one control value per
                   producer replica; only the last one ends the iteration *)
                let body =
                  match spec.r_distribute with
                  | Some (dq, _) when h.h_queue = dq && r > 1 ->
                    let cnt = Printf.sprintf "__cvn%d" h.h_queue in
                    [
                      Assign (cnt, Binop (Add, Var cnt, Const (Vint 1)));
                      If
                        ( fresh_site (),
                          Binop (Eq, Var cnt, Const (Vint r)),
                          Assign (cnt, Const (Vint 0)) :: body,
                          [] );
                    ]
                  | _ -> body
                in
                { h with h_queue = qmap h.h_queue; h_body = body })
              st.s_handlers
          in
          let prelude =
            match spec.r_distribute with
            | Some (dq, _) when r > 1 && List.exists (fun h -> h.h_queue = qmap dq) handlers
              ->
              [ Assign (Printf.sprintf "__cvn%d" dq, Const (Vint 0)) ]
            | _ -> []
          in
          {
            s_name = Printf.sprintf "%s_r%d" st.s_name k;
            s_body = prelude @ rewrite_block ~qmap ~amap ~enq_hook st.s_body;
            s_handlers = handlers;
          })
        p.p_stages
    in
    let queues =
      List.map (fun q -> { q with q_id = qmap q.q_id }) p.p_queues
    in
    let ras =
      List.map
        (fun ra ->
          {
            ra with
            ra_id = ra.ra_id + (k * nra);
            ra_in = qmap ra.ra_in;
            ra_out = qmap ra.ra_out;
            ra_array = amap ra.ra_array;
          })
        p.p_ras
    in
    let arrays =
      List.filter_map
        (fun a ->
          if List.mem a.a_name spec.r_private_arrays then
            Some { a with a_name = private_name a.a_name k }
          else if k = 0 then Some a
          else None)
        p.p_arrays
    in
    (stages, queues, ras, arrays)
  in
  let parts = List.init r replica in
  let params =
    (* shared params minus shadowed ones; per-replica params become
       replica-suffixed names referenced through amap? No: scalars are
       per-stage locals, so give each replica's stages a prelude assign. *)
    p.p_params
  in
  let per_replica_prelude k =
    List.map (fun (x, f) -> Assign (x, Const (f k))) spec.r_private_params
  in
  let stages =
    List.concat
      (List.mapi
         (fun k (stages, _, _, _) ->
           List.map
             (fun st -> { st with s_body = per_replica_prelude k @ st.s_body })
             stages)
         parts)
  in
  {
    p with
    p_name = Printf.sprintf "%s_x%d" p.p_name r;
    p_stages = stages;
    p_queues = List.concat_map (fun (_, qs, _, _) -> qs) parts;
    p_ras = List.concat_map (fun (_, _, ras, _) -> ras) parts;
    p_arrays = List.concat_map (fun (_, _, _, arrs) -> arrs) parts;
    p_params = params;
  }

(* Core placement: replica k's stages (and its RAs) on core k mod n_cores. *)
let thread_core_map (p_base : pipeline) ~replicas ~n_cores =
  let per = List.length p_base.p_stages in
  Array.init (replicas * per) (fun i -> i / per mod n_cores)
