(* Keyed program tree: the decoupler's working representation. Each node of
   the normalized body gets a unique key so stage assignment, def/use
   analysis, and communication planning can reference positions stably. *)

open Phloem_ir.Types

type t =
  | Kstmt of int * stmt (* a simple (non-control) statement *)
  | Kif of int * int * expr * t list * t list (* key, site, cond *)
  | Kwhile of int * int * expr * t list
  | Kfor of int * int * var * expr * expr * t list

let key = function
  | Kstmt (k, _) | Kif (k, _, _, _, _) | Kwhile (k, _, _, _) | Kfor (k, _, _, _, _, _) -> k

(* Build a keyed tree from a normalized body; returns the tree and the
   number of keys. *)
let of_body (body : stmt list) : t list * int =
  let counter = ref 0 in
  let fresh () =
    let k = !counter in
    incr counter;
    k
  in
  let rec conv (s : stmt) : t =
    match s with
    | If (site, c, tb, fb) -> Kif (fresh (), site, c, List.map conv tb, List.map conv fb)
    | While (site, c, b) -> Kwhile (fresh (), site, c, List.map conv b)
    | For (site, v, lo, hi, b) -> Kfor (fresh (), site, v, lo, hi, List.map conv b)
    | Assign _ | Store _ | Atomic_min _ | Atomic_add _ | Prefetch _ | Enq _
    | Enq_ctrl _ | Enq_indexed _ | Break | Exit_loops _ | Barrier _ | Seq_marker _ ->
      Kstmt (fresh (), s)
  in
  let tree = List.map conv body in
  (tree, !counter)

let rec iter f node =
  f node;
  match node with
  | Kstmt _ -> ()
  | Kif (_, _, _, tb, fb) ->
    List.iter (iter f) tb;
    List.iter (iter f) fb
  | Kwhile (_, _, _, b) | Kfor (_, _, _, _, _, b) -> List.iter (iter f) b

let iter_list f nodes = List.iter (iter f) nodes

(* Variables read by an expression. *)
let rec expr_uses acc (e : expr) =
  match e with
  | Const _ -> acc
  | Var x -> if List.mem x acc then acc else x :: acc
  | Binop (_, a, b) -> expr_uses (expr_uses acc a) b
  | Unop (_, a) | Is_control a | Ctrl_payload a -> expr_uses acc a
  | Load (_, i) -> expr_uses acc i
  | Deq _ -> acc
  | Call (_, args) -> List.fold_left expr_uses acc args

(* Variables read by a simple statement (not recursing into control). *)
let stmt_uses (s : stmt) : var list =
  match s with
  | Assign (_, e) -> expr_uses [] e
  | Store (_, i, v) | Atomic_min (_, i, v) | Atomic_add (_, i, v) ->
    expr_uses (expr_uses [] i) v
  | Prefetch (_, i) -> expr_uses [] i
  | Enq (_, e) -> expr_uses [] e
  | Enq_indexed (_, sel, e) -> expr_uses (expr_uses [] sel) e
  | Enq_ctrl _ | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> []
  | If _ | While _ | For _ -> assert false

let stmt_def (s : stmt) : var option =
  match s with
  | Assign (x, _) -> Some x
  | Store _ | Atomic_min _ | Atomic_add _ | Prefetch _ | Enq _ | Enq_ctrl _
  | Enq_indexed _ | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> None
  | If _ | While _ | For _ -> assert false

(* The load inside a simple statement, if any (normal form has at most one,
   and only in Assign right-hand sides). *)
let stmt_load (s : stmt) : (array_id * expr) option =
  match s with
  | Assign (_, Load (a, i)) -> Some (a, i)
  | _ -> None

let rec expr_is_pure (e : expr) =
  match e with
  | Const _ | Var _ -> true
  | Binop (_, a, b) -> expr_is_pure a && expr_is_pure b
  | Unop (_, a) -> expr_is_pure a
  | Load _ | Deq _ | Is_control _ | Ctrl_payload _ | Call _ -> false
