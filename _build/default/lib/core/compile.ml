(* Phloem's top-level compilation entry points.

   [static_flow] implements the static compilation mode (paper Fig. 8,
   upper right): pick the (n-1) highest-ranked decoupling points with the
   cost model and emit one pipeline. [with_cuts] compiles an explicit cut
   selection (used by the profile-guided search in Search). *)

open Phloem_ir.Types

exception Unsupported = Decouple.Reject

let candidates (serial : pipeline) : Costmodel.cut list =
  match serial.p_stages with
  | [ st ] ->
    let tree, _ = Ktree.of_body (Normalize.body st.s_body) in
    Costmodel.candidates tree
  | _ -> invalid_arg "Compile.candidates: expected serial pipeline"

let with_cuts ?(flags = Decouple.all_passes) (serial : pipeline)
    (cuts : Costmodel.cut list) : pipeline =
  let p = Decouple.split ~flags serial cuts in
  let p =
    if flags.Decouple.f_ra && flags.Decouple.f_dce then Chain.apply p
    else Chain.cleanup p
  in
  if List.length p.p_queues > 16 then
    Decouple.reject "pipeline uses %d queues (max 16)" (List.length p.p_queues);
  if List.length p.p_ras > 4 then
    Decouple.reject "pipeline uses %d RAs (max 4)" (List.length p.p_ras);
  Phloem_ir.Validate.check p;
  p

(* Static mode: an n-stage pipeline from the top-ranked cost-model cuts.
   Cuts that make decoupling illegal (e.g. they would split a merge loop's
   induction updates across stages) are skipped greedily, in rank order. *)
let static_flow ?(flags = Decouple.all_passes) ?(stages = 4) (serial : pipeline) :
    pipeline =
  match serial.p_stages with
  | [ st ] ->
    let tree, _ = Ktree.of_body (Normalize.body st.s_body) in
    let ranked = Costmodel.candidates tree in
    let in_order cuts =
      List.sort
        (fun (a : Costmodel.cut) b -> compare (List.hd a.cut_loads) (List.hd b.cut_loads))
        cuts
    in
    let try_compile cuts =
      match with_cuts ~flags serial (in_order cuts) with
      | p -> Some p
      | exception Decouple.Reject _ -> None
      | exception Phloem_ir.Validate.Invalid _ -> None
    in
    let rec greedy chosen best = function
      | [] -> best
      | c :: rest ->
        if List.length chosen >= stages - 1 then best
        else (
          match try_compile (c :: chosen) with
          | Some p -> greedy (c :: chosen) (Some p) rest
          | None -> greedy chosen best rest)
    in
    (match greedy [] None ranked with
    | Some p -> p
    | None -> Decouple.reject "no legal decoupling found")
  | _ -> invalid_arg "Compile.static_flow: expected serial pipeline"

(* Compile minic source text end to end (used by phloemc and tests). *)
let from_minic_source ?(flags = Decouple.all_passes) ?(stages = 4) src
    ~(arrays : (string * value array) list) ~(scalars : (string * value) list) :
    pipeline * (string * value array) list =
  let lw = Phloem_minic.Lower.of_source src in
  let serial, inputs = Phloem_minic.Lower.to_serial_pipeline lw ~arrays ~scalars in
  (static_flow ~flags ~stages serial, inputs)
