(* phloemc: the Phloem compiler CLI.

   Reads a minic source file containing a [#pragma phloem] kernel, runs the
   decoupling-point cost model and the pass pipeline, and prints the
   resulting pipeline-parallel program. Because array extents are part of
   the IR, array parameters are bound to placeholder lengths (--length).

   Pass-manager introspection: [--time-passes] prints per-pass wall time and
   op-count deltas, [--verify-each] re-validates the IR after every pass,
   [--dump-ir[=DIR]] writes numbered IR snapshots, [--print-pipeline] lists
   the registered passes the current flags select. *)

open Cmdliner
module Log = Phloem_util.Log

let compile_cmd src_file stages length list_cuts flags_off time_passes verify_each
    dump_ir print_pipeline log_level autotune beam budget autotune_json =
  (match Option.bind log_level Log.level_of_string with
  | Some l -> Log.set_level l
  | None ->
    (match log_level with
    | Some bad ->
      Printf.eprintf "phloemc: unknown log level %s (debug|info|warn|error)\n" bad
    | None -> ()));
  let src = In_channel.with_open_text src_file In_channel.input_all in
  let lw = Phloem_minic.Lower.of_source src in
  let arrays =
    List.map
      (fun (name, ty) ->
        ( name,
          Array.make length
            (match ty with
            | Phloem_ir.Types.Ety_int -> Phloem_ir.Types.Vint 0
            | Phloem_ir.Types.Ety_float -> Phloem_ir.Types.Vfloat 0.0) ))
      lw.Phloem_minic.Lower.lw_arrays
  in
  let scalars =
    List.map
      (fun (name, ty) ->
        ( name,
          match ty with
          | Phloem_ir.Types.Ety_int -> Phloem_ir.Types.Vint 1
          | Phloem_ir.Types.Ety_float -> Phloem_ir.Types.Vfloat 1.0 ))
      lw.Phloem_minic.Lower.lw_scalars
  in
  let serial, inputs = Phloem_minic.Lower.to_serial_pipeline lw ~arrays ~scalars in
  if list_cuts then begin
    print_endline "Decoupling-point candidates (best first):";
    List.iteri
      (fun i (c : Phloem.Costmodel.cut) ->
        Printf.printf "  %2d. loads %s%s, score %.1f\n" i
          (String.concat "," (List.map string_of_int c.Phloem.Costmodel.cut_loads))
          (if c.Phloem.Costmodel.cut_prefetch then " (prefetch-only)" else "")
          c.Phloem.Costmodel.cut_score)
      (Phloem.Compile.candidates serial)
  end;
  let flags =
    List.fold_left
      (fun f off ->
        let open Phloem.Decouple in
        match off with
        | "recompute" -> { f with f_recompute = false }
        | "ra" -> { f with f_ra = false }
        | "cv" -> { f with f_cv = false }
        | "handlers" -> { f with f_handlers = false }
        | "dce" -> { f with f_dce = false }
        | "chain" -> { f with f_chain = false }
        | other ->
          Printf.eprintf
            "phloemc: unknown pass %s (recompute|ra|cv|handlers|dce|chain)\n" other;
          exit 1)
      Phloem.Decouple.all_passes flags_off
  in
  if print_pipeline then begin
    print_endline "Pass pipeline (in order):";
    List.iter
      (fun pass ->
        Printf.printf "  %-12s %s\n" (Phloem.Pass.name_of pass)
          (Phloem.Pass.describe_of pass))
      (Phloem.Passes.standard ~flags)
  end;
  if autotune then begin
    (* Search the full design space on the placeholder-bound kernel: every
       output array is checked against the serial run, so the winning
       configuration is known-correct for these bindings. *)
    let check_arrays = List.map fst arrays in
    let outcome =
      Phloem_util.Pool.with_pool (fun pool ->
          Phloem.Autotune.tune ~flags ~beam ~budget ~pool ~check_arrays
            ~training:[ (serial, inputs) ] ())
    in
    print_string (Phloem.Autotune.summary outcome);
    (match autotune_json with
    | Some file ->
      Pipette.Telemetry.Json.to_file file
        (Phloem.Autotune.json_of_outcome outcome);
      Printf.printf ";; search trace written to %s\n" file
    | None -> ());
    0
  end
  else
  let options =
    { Phloem.Pass.verify_each; dump_ir; keep_snapshots = false }
  in
  match Phloem.Compile.static_flow_report ~flags ~options ~stages serial with
  | p, report ->
    print_endline (Phloem_ir.Printer.pipeline_to_string p);
    Printf.printf "\n;; %d stages, %d queues, %d reference accelerators\n"
      (List.length p.Phloem_ir.Types.p_stages)
      (List.length p.Phloem_ir.Types.p_queues)
      (List.length p.Phloem_ir.Types.p_ras);
    if time_passes then print_endline (Phloem.Pass.report_to_string report);
    Option.iter (Printf.printf ";; IR snapshots written to %s/\n") dump_ir;
    0
  | exception Phloem.Compile.Unsupported msg ->
    Printf.eprintf "phloemc: %s\n" msg;
    1
  | exception Phloem.Pass.Verify_failed (pass, msg) ->
    Printf.eprintf "phloemc: verification failed after pass %s: %s\n" pass msg;
    1

let src_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.c" ~doc:"minic source file")

let stages_arg =
  Arg.(value & opt int 4 & info [ "stages"; "s" ] ~doc:"target pipeline stage count")

let length_arg =
  Arg.(value & opt int 64 & info [ "length" ] ~doc:"placeholder array length for binding")

let list_cuts_arg =
  Arg.(value & flag & info [ "list-cuts" ] ~doc:"print the ranked decoupling points")

let flags_off_arg =
  Arg.(
    value & opt_all string []
    & info [ "disable" ]
        ~doc:"disable a pass: recompute, ra, cv, handlers, dce, chain (repeatable)")

let time_passes_arg =
  Arg.(
    value & flag
    & info [ "time-passes" ] ~doc:"print per-pass wall time and op-count deltas")

let verify_each_arg =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:"re-validate the IR and check pass invariants after every pass")

let dump_ir_arg =
  Arg.(
    value
    & opt ~vopt:(Some "phloem-ir") (some string) None
    & info [ "dump-ir" ] ~docv:"DIR"
        ~doc:"write numbered IR snapshots after every pass (default DIR: phloem-ir)")

let print_pipeline_arg =
  Arg.(
    value & flag
    & info [ "print-pipeline" ]
        ~doc:"list the registered passes the current flags select")

let log_level_arg =
  Arg.(
    value & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"diagnostics threshold: debug, info, warn (default), or error")

let autotune_arg =
  Arg.(
    value & flag
    & info [ "autotune" ]
        ~doc:
          "run the analysis-guided autotuner over the full design space \
           (cut sets x queue capacities x replication x chaining x cores) \
           on the placeholder-bound kernel instead of the static flow; \
           prints the winning configuration and search counters. The \
           --disable flags seed the search's pass gates.")

let beam_arg =
  Arg.(
    value & opt int 4
    & info [ "beam" ] ~docv:"N"
        ~doc:"(--autotune) expand only the $(docv) best survivors per wave")

let budget_arg =
  Arg.(
    value & opt int 64
    & info [ "budget" ] ~docv:"N"
        ~doc:"(--autotune) simulate at most $(docv) configurations in total")

let autotune_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "autotune-json" ] ~docv:"FILE"
        ~doc:
          "(--autotune) write the winning configuration and the full \
           search trace (per-candidate cycles, verdicts, move provenance) \
           as JSON to $(docv)")

let cmd =
  Cmd.v
    (Cmd.info "phloemc" ~doc:"compile a serial minic kernel into a Pipette pipeline")
    Term.(
      const compile_cmd $ src_arg $ stages_arg $ length_arg $ list_cuts_arg
      $ flags_off_arg $ time_passes_arg $ verify_each_arg $ dump_ir_arg
      $ print_pipeline_arg $ log_level_arg $ autotune_arg $ beam_arg
      $ budget_arg $ autotune_json_arg)

let () = exit (Cmd.eval' cmd)
