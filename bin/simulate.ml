(* simulate: run one benchmark / variant / input on the Pipette model and
   report cycles, IPC, breakdowns and energy — as text, and optionally as a
   machine-readable JSON report (--json), a Chrome trace-event file
   (--trace-out) with per-thread stall timelines and queue-occupancy
   counter tracks. *)

open Cmdliner
open Phloem_workloads
module Serve = Phloem_serve

(* Empty traces report 0 cycles; keep the derived ratios finite. *)
let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

(* Parse --inject / --fault-key into a fault plan (shared by the local and
   the --remote path; the remote daemon replays the identical plan). *)
let fault_plan inject fault_key =
  match inject with
  | None -> None
  | Some s -> (
    match Pipette.Faults.of_string s with
    | Ok plan ->
      let plan =
        match fault_key with
        | Some k -> { plan with Pipette.Faults.fp_key = k }
        | None -> plan
      in
      Some plan
    | Error msg ->
      Printf.eprintf "simulate: bad --inject plan: %s\n" msg;
      exit 2)

(* --- --remote SOCK: replay this CLI invocation against a phloemd ------- *)

let run_remote sock (job : Serve.Protocol.job) json_out =
  let module Json = Pipette.Telemetry.Json in
  (* Measured client-side on purpose: the ok envelope must stay a pure
     function of the job (cache hits splice raw payload bytes), so the
     daemon cannot embed per-request timings in it. *)
  let t0 = Unix.gettimeofday () in
  let line =
    match
      Serve.Client.with_unix sock (fun fd ->
          Serve.Client.request fd (Serve.Protocol.simulate_request job))
    with
    | line -> line
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "simulate: cannot reach phloemd at %s: %s\n" sock
        (Unix.error_message e);
      exit 1
    | exception End_of_file ->
      Printf.eprintf "simulate: phloemd at %s hung up without responding\n" sock;
      exit 1
  in
  let latency_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let j =
    try Json.of_string line
    with Json.Parse_error msg ->
      Printf.eprintf "simulate: malformed daemon response: %s\n" msg;
      exit 1
  in
  let str k = match Json.member k j with Some (Json.Str s) -> s | _ -> "?" in
  match Serve.Protocol.response_status j with
  | "ok" -> (
    let cached = Serve.Protocol.response_cached j in
    match Serve.Protocol.response_payload_raw line with
    | None ->
      Printf.eprintf "simulate: ok response without a result payload\n";
      exit 1
    | Some payload_raw ->
      let p = Json.of_string payload_raw in
      let num k =
        match Option.bind (Json.member k p) Json.to_float_opt with
        | Some v -> v
        | None -> 0.0
      in
      let valid =
        match Json.member "valid" p with Some (Json.Bool b) -> b | _ -> false
      in
      Printf.printf "%s / %s on %s (remote via %s)\n" job.Serve.Protocol.j_bench
        job.Serve.Protocol.j_variant job.Serve.Protocol.j_input sock;
      Printf.printf "  served from cache         : %b\n" cached;
      Printf.printf "  round-trip latency        : %.2f ms\n" latency_ms;
      Printf.printf "  result valid vs reference : %b\n" valid;
      Printf.printf "  cycles                    : %.0f\n" (num "cycles");
      Printf.printf "  speedup over serial       : %.2fx\n" (num "speedup");
      (match json_out with
      | Some file ->
        (* raw payload bytes, so repeated requests write identical files *)
        let oc = open_out_bin file in
        output_string oc payload_raw;
        output_char oc '\n';
        close_out oc;
        Printf.printf "  JSON report written to %s\n" file
      | None -> ());
      if valid then 0 else 2)
  | "shed" ->
    Printf.eprintf
      "simulate: phloemd shed the request (queue %s/%s full); retry with \
       backoff\n"
      (match Json.member "queued" j with Some (Json.Int n) -> string_of_int n | _ -> "?")
      (match Json.member "limit" j with Some (Json.Int n) -> string_of_int n | _ -> "?");
    8
  | "error" -> (
    Printf.eprintf "simulate: remote error [%s]: %s\n" (str "code") (str "message");
    match
      Option.bind (Json.member "failure" j) (fun f -> Json.member "exit_code" f)
    with
    | Some (Json.Int code) -> code
    | _ -> 2)
  | other ->
    Printf.eprintf "simulate: unknown response status %S\n" other;
    1

(* --- --autotune: analysis-guided search over the full design space ----- *)

let run_autotune bench input scale json_out jobs beam search_budget max_replicas
    max_cores =
  let module Json = Pipette.Telemetry.Json in
  let b =
    try Serve.Jobs.bind ~bench ~input ~scale
    with Serve.Jobs.Bad_job msg -> failwith msg
  in
  let metrics = Phloem_util.Metrics.create () in
  let outcome =
    Phloem_util.Pool.with_pool ~jobs (fun pool ->
        Phloem.Autotune.tune ~beam ~budget:search_budget ~max_replicas
          ~max_cores ~pool ~metrics ~check_arrays:b.Workload.b_check_arrays
          ~training:[ b.Workload.b_serial ] ())
  in
  Printf.printf "%s / autotune on %s\n" b.Workload.b_name input;
  print_string (Phloem.Autotune.summary outcome);
  (let module M = Phloem_util.Metrics in
   let module S = Phloem_util.Stats in
   let h = M.observed (M.histogram metrics "autotune_eval_s") in
   if S.hist_count h > 0 then
     Printf.printf
       "  eval latency: p50 %.1f ms, p95 %.1f ms, max %.1f ms over %d evals\n"
       (1000.0 *. S.percentile_hist 0.50 h)
       (1000.0 *. S.percentile_hist 0.95 h)
       (1000.0 *. Option.value ~default:0.0 (S.hist_max h))
       (S.hist_count h));
  (match json_out with
  | Some file ->
    let cyc = function c :: _ -> c | [] -> 0 in
    let serial_c = cyc outcome.Phloem.Autotune.o_serial_cycles in
    let speedup c = if c = 0 then 0.0 else float_of_int serial_c /. float_of_int c in
    let run_obj c =
      Json.Obj [ ("cycles", Json.Int c); ("speedup", Json.Float (speedup c)) ]
    in
    (* the "benchmarks" section mirrors the evaluation-report shape so
       Harness.Regress can diff autotune baselines with the same machinery *)
    let runs =
      [
        ("serial", run_obj serial_c);
        ("autotuned", run_obj (cyc outcome.Phloem.Autotune.o_best_cycles));
      ]
      @
      match outcome.Phloem.Autotune.o_cut_only with
      | Some (_, cycles, _) -> [ ("pgo_cut_only", run_obj (cyc cycles)) ]
      | None -> []
    in
    Json.to_file file
      (Json.Obj
         [
           ("bench", Json.Str bench);
           ("input", Json.Str input);
           ("scale", Json.Float scale);
           ("autotune", Phloem.Autotune.json_of_outcome outcome);
           ( "benchmarks",
             Json.List
               [
                 Json.Obj
                   [
                     ("benchmark", Json.Str bench);
                     ( "inputs",
                       Json.List
                         [
                           Json.Obj
                             [
                               ("input", Json.Str input);
                               ("runs", Json.Obj runs);
                             ];
                         ] );
                   ];
               ] );
         ]);
    Printf.printf "  JSON report written to %s\n" file
  | None -> ());
  0

let rec simulate bench variant input scale json_out trace_out sample_interval
    jobs profile inject fault_key watchdog cycle_budget remote autotune beam
    search_budget max_replicas max_cores =
  if autotune then
    run_autotune bench input scale json_out jobs beam search_budget max_replicas
      max_cores
  else
  let plan = fault_plan inject fault_key in
  let job =
    {
      Serve.Protocol.default_job with
      Serve.Protocol.j_bench = bench;
      j_variant = variant;
      j_input = input;
      j_scale = scale;
      j_inject = plan;
      j_watchdog = watchdog;
      j_cycle_budget = cycle_budget;
    }
  in
  match remote with
  | Some sock -> run_remote sock job json_out
  | None ->
  let b =
    try Serve.Jobs.bind ~bench ~input ~scale
    with Serve.Jobs.Bad_job msg -> failwith msg
  in
  let serial_p, serial_in = b.Workload.b_serial in
  let p, inputs =
    try Serve.Jobs.variant_pipeline b ~variant ~stages:4 ~threads:4
    with Serve.Jobs.Bad_job msg -> failwith msg
  in
  let faults = Option.map Pipette.Faults.create plan in
  let telemetry =
    if json_out <> None || trace_out <> None then
      Some (Pipette.Telemetry.create ~interval:sample_interval ())
    else None
  in
  (* A wedged run (deadlock / livelock / exhausted cycle budget) surfaces
     as a structured forensics report: rendered to stdout, written to
     --json when given, and mapped to a distinct exit code (deadlock 5,
     livelock 6, budget 7) so CI can tell the failure modes apart. *)
  let fail_and_exit (fr : Phloem_ir.Forensics.report) =
    print_string (Phloem_ir.Forensics.render fr);
    (match json_out with
    | Some file ->
      let open Pipette.Telemetry.Json in
      let flt =
        match faults with
        | Some f -> [ ("faults", Pipette.Faults.json_of_counters f) ]
        | None -> []
      in
      to_file file
        (Obj
           ([
              ("bench", Str bench);
              ("variant", Str variant);
              ("input", Str input);
              ("failure", Pipette.Analysis.json_of_failure fr);
            ]
           @ flt));
      Printf.printf "  failure JSON written to %s\n" file
    | None -> ());
    Phloem_ir.Forensics.exit_code fr.Phloem_ir.Forensics.fr_kind
  in
  (* The serial baseline and the variant run are independent simulations:
     with --jobs > 1 they execute on separate domains; --jobs 1 runs them
     in order on this one, exactly the previous path. Faults are injected
     into the variant run only — the serial baseline stays clean. *)
  match
    Phloem_util.Pool.with_pool ~jobs (fun pool ->
        Phloem_util.Pool.run pool
          [
            (fun () -> Pipette.Sim.run ~inputs:serial_in serial_p);
            (fun () ->
              Pipette.Sim.run ~inputs ?telemetry ?faults ?watchdog ?cycle_budget
                p);
          ])
  with
  | exception Phloem_ir.Forensics.Pipeline_failure fr -> fail_and_exit fr
  | [ sr; r ] -> report bench variant input scale json_out trace_out profile
                   faults telemetry b p sr r
  | _ -> assert false

and report bench variant input scale json_out trace_out profile faults telemetry
    b p sr r =
  let serial_cycles = Pipette.Sim.cycles sr in
  let t = r.Pipette.Sim.sr_timing in
  let ok = Workload.check b r.Pipette.Sim.sr_functional in
  Printf.printf "%s / %s on %s\n" b.Workload.b_name variant input;
  Printf.printf "  result valid vs reference : %b\n" ok;
  Printf.printf "  cycles                    : %d\n" t.Pipette.Engine.cycles;
  Printf.printf "  micro-ops                 : %d (IPC %.2f)\n" t.Pipette.Engine.instrs
    (fdiv t.Pipette.Engine.instrs t.Pipette.Engine.cycles);
  Printf.printf "  speedup over serial       : %.2fx\n"
    (fdiv serial_cycles t.Pipette.Engine.cycles);
  Printf.printf "  thread-cycles: issue %d, backend %d, queue %d, other %d\n"
    t.Pipette.Engine.issue_cycles t.Pipette.Engine.backend_cycles
    t.Pipette.Engine.queue_cycles t.Pipette.Engine.other_cycles;
  Printf.printf "  branches: %d (%.1f%% mispredicted)\n" t.Pipette.Engine.branch_lookups
    (100.0
    *. float_of_int t.Pipette.Engine.branch_mispredicts
    /. float_of_int (max 1 t.Pipette.Engine.branch_lookups));
  Printf.printf "  DRAM accesses: %d; queue ops: %d; RA fetches: %d\n"
    t.Pipette.Engine.cache.Pipette.Cache.c_dram t.Pipette.Engine.queue_ops
    t.Pipette.Engine.ra_fetches;
  Printf.printf "  prefetches: %d (%d cache hits, %d DRAM fills)\n"
    t.Pipette.Engine.cache.Pipette.Cache.c_prefetches
    t.Pipette.Engine.cache.Pipette.Cache.c_prefetch_hits
    t.Pipette.Engine.cache.Pipette.Cache.c_prefetch_dram;
  let e = r.Pipette.Sim.sr_energy in
  Printf.printf "  energy (nJ): core %.0f, memory %.0f, queues+RA %.0f, static %.0f\n"
    e.Pipette.Energy.e_core_dynamic e.Pipette.Energy.e_memory
    e.Pipette.Energy.e_queues_ras e.Pipette.Energy.e_static;
  (match faults with
  | Some f ->
    let c = Pipette.Faults.counters f in
    Printf.printf
      "  faults injected: %d (drops %d, dups %d, spikes %d, stall-cycles %d, \
       kills %d, poisons %d)\n"
      (Pipette.Faults.total f) c.Pipette.Faults.c_drops c.Pipette.Faults.c_dups
      c.Pipette.Faults.c_spikes c.Pipette.Faults.c_stall_cycles
      c.Pipette.Faults.c_kills c.Pipette.Faults.c_poisons
  | None -> ());
  let analysis =
    if profile then
      Some (Pipette.Sim.analyze ~stage_names:(Pipette.Sim.stage_names p) r)
    else None
  in
  (match analysis with
  | Some rep ->
    print_newline ();
    print_string (Pipette.Analysis.render rep)
  | None -> ());
  (match json_out with
  | None -> ()
  | Some file ->
    let open Pipette.Telemetry.Json in
    let meta =
      [
        ("bench", Str bench);
        ("variant", Str variant);
        ("input", Str input);
        ("scale", Float scale);
        ("valid", Bool ok);
        ("serial_cycles", Int serial_cycles);
        ("speedup", Float (fdiv serial_cycles t.Pipette.Engine.cycles));
      ]
    in
    let core =
      match Pipette.Sim.json_of_run r with Obj fields -> fields | j -> [ ("run", j) ]
    in
    let tel =
      match telemetry with
      | Some tel -> [ ("telemetry", Pipette.Telemetry.report_json tel) ]
      | None -> []
    in
    let ana =
      match analysis with
      | Some rep -> [ ("analysis", Pipette.Analysis.json_of_report rep) ]
      | None -> []
    in
    let flt =
      match faults with
      | Some f -> [ ("faults", Pipette.Faults.json_of_counters f) ]
      | None -> []
    in
    to_file file (Obj (meta @ core @ flt @ tel @ ana));
    Printf.printf "  JSON report written to %s\n" file);
  (match (trace_out, telemetry) with
  | Some file, Some tel ->
    Pipette.Telemetry.write_trace_file tel file;
    Printf.printf "  Chrome trace written to %s (load in chrome://tracing or Perfetto)\n"
      file
  | _ -> ());
  if ok then 0 else 2

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCH" ~doc:"bfs | cc | prd | radii | spmm | spmv | residual | mtmul | sddmm")

let variant_arg =
  Arg.(
    value & pos 1 string "phloem"
    & info [] ~docv:"VARIANT" ~doc:"serial | phloem | data-parallel | manual")

let input_arg =
  Arg.(value & pos 2 string "USA-road-d-USA" & info [] ~docv:"INPUT" ~doc:"input name (Table IV/V)")

let scale_arg = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"input scale factor")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"write a machine-readable JSON report to $(docv)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"write a Chrome trace-event file (chrome://tracing / Perfetto) to $(docv)")

let interval_arg =
  Arg.(
    value & opt int 1000
    & info [ "sample-interval" ] ~docv:"N"
        ~doc:"telemetry sampling interval in cycles (with --json / --trace-out)")

let jobs_arg =
  Arg.(
    value
    & opt int (Phloem_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "domains used to run the independent simulations (default: the \
           recommended domain count; 1 = fully serial)")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "print the bottleneck-attribution report: per-stage issue/stall \
           balance, per-queue full/empty stall cycles and occupancy, the \
           critical queue, and a headroom estimate (also added to --json \
           under \"analysis\")")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"PLAN"
        ~doc:
          "inject deterministic faults into the variant run (the serial \
           baseline stays clean). $(docv) is a comma-separated plan, e.g. \
           $(b,drop\\@q0:0.01,spike\\@dram+400:0.05,stall\\@t1:1000x200,kill\\@t2:5000,poison:0.1). \
           Replays with the same plan and --fault-key inject identical faults.")

let fault_key_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-key" ] ~docv:"K"
        ~doc:"PRNG key for the --inject plan (default 0); fixes the replay")

let watchdog_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "watchdog-window" ] ~docv:"N"
        ~doc:
          "declare livelock (exit 6) when no micro-op has retired for $(docv) \
           cycles while the clock still advances (default 5000000)")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cycle-budget" ] ~docv:"N"
        ~doc:
          "abort with a budget-exhausted report (exit 7) past $(docv) \
           simulated cycles (default 500000000)")

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"SOCK"
        ~doc:
          "do not simulate locally: send the job to the phloemd daemon \
           listening on Unix socket $(docv) and report its response \
           (repeated identical jobs are served from the daemon's \
           content-addressed cache). --json writes the daemon's result \
           payload verbatim; --trace-out/--profile/--jobs do not apply")

let autotune_arg =
  Arg.(
    value & flag
    & info [ "autotune" ]
        ~doc:
          "ignore VARIANT and run the analysis-guided autotuner over the \
           full design space (cut sets x queue capacities x replication x \
           chaining x cores) on this benchmark/input, seeding the search \
           with every PGO cut set; prints the winning configuration and \
           search counters, and writes the full search trace to --json")

let beam_arg =
  Arg.(
    value & opt int 4
    & info [ "beam" ] ~docv:"N"
        ~doc:"(--autotune) expand only the $(docv) best survivors per wave")

let search_budget_arg =
  Arg.(
    value & opt int 64
    & info [ "search-budget" ] ~docv:"N"
        ~doc:
          "(--autotune) simulate at most $(docv) configurations in total \
           (distinct from --cycle-budget, which bounds one replay)")

let max_replicas_arg =
  Arg.(
    value & opt int 2
    & info [ "max-replicas" ] ~docv:"N"
        ~doc:"(--autotune) cap pipeline replication at $(docv) copies")

let max_cores_arg =
  Arg.(
    value & opt int 4
    & info [ "max-cores" ] ~docv:"N"
        ~doc:"(--autotune) cap the simulated core count at $(docv)")

let cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"run one benchmark variant on the Pipette simulator"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 on success; 2 on a result mismatch or usage error; 5 if the \
              queue network deadlocks; 6 on livelock (watchdog window with no \
              retirement); 7 when the cycle budget runs out while progress is \
              still being made. Failures 5-7 print a structured forensics \
              report (per-agent blocked-on state, cyclic wait chain, queue \
              occupancy, diagnosis) and write it to --json when given. With \
              --remote: 1 when the daemon is unreachable or responds \
              malformed, 8 when it sheds the request under load (its job \
              queue is full — retry with backoff); remote pipeline failures \
              map to the same 5-7.";
         ])
    Term.(
      const simulate $ bench_arg $ variant_arg $ input_arg $ scale_arg $ json_arg
      $ trace_arg $ interval_arg $ jobs_arg $ profile_arg $ inject_arg
      $ fault_key_arg $ watchdog_arg $ budget_arg $ remote_arg $ autotune_arg
      $ beam_arg $ search_budget_arg $ max_replicas_arg $ max_cores_arg)

let () = exit (Cmd.eval' cmd)
