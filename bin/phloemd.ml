(* phloemd: persistent simulation-as-a-service daemon. Accepts
   compile+simulate jobs as line-delimited JSON over a Unix-domain (and
   optionally TCP) socket, executes them on a pool of OCaml 5 domains, and
   serves repeated requests from a content-addressed result cache —
   determinism makes every result a pure function of its request, so a
   repeat is answered in O(lookup) with byte-identical JSON. See README
   "Running phloemd" for the protocol and DESIGN.md "Simulation as a
   service" for the cache-key derivation.

   Observability (--metrics-out / --trace-out / --slow-ms) is opt-in: any
   of these flags creates a Serve.Obs handle threaded through the server,
   and a flusher thread rewrites the output files atomically on an
   interval so a killed daemon still leaves a usable last snapshot. *)

open Cmdliner
module Serve = Phloem_serve

let write_stats file server =
  (* Atomic like the Obs writers: stats are also scraped while live. *)
  let tmp = file ^ ".tmp" in
  Pipette.Telemetry.Json.to_file tmp (Serve.Server.stats_json server);
  Sys.rename tmp file

let serve socket tcp jobs queue_limit batch cache_entries sim_cache max_request
    stats_out metrics_out trace_out slow_ms flush_interval log_level =
  (match Phloem_util.Log.level_of_string log_level with
  | Some l -> Phloem_util.Log.set_level l
  | None ->
    Printf.eprintf "phloemd: unknown log level %s\n" log_level;
    exit 2);
  (* A daemon serving many distinct pipelines needs more memo room than the
     sweep default; PHLOEM_TRACE_CACHE still sets the initial on/off. *)
  Pipette.Sim.set_cache_capacity sim_cache;
  let obs =
    if metrics_out <> None || trace_out <> None || slow_ms <> None then
      Some (Serve.Obs.create ?slow_ms ())
    else None
  in
  let opts =
    {
      Serve.Server.so_unix = Some socket;
      so_tcp = tcp;
      so_jobs = jobs;
      so_queue_limit = queue_limit;
      so_batch = batch;
      so_cache_entries = cache_entries;
      so_max_request = max_request;
      so_obs = obs;
    }
  in
  let server =
    try Serve.Server.create opts
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "phloemd: cannot listen (%s %s: %s)\n" fn arg
        (Unix.error_message e);
      exit 1
  in
  let shutdown _ = Serve.Server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let flush_outputs () =
    (try Option.iter (fun f -> write_stats f server) stats_out
     with Sys_error _ -> ());
    match obs with
    | None -> ()
    | Some o ->
      (try Option.iter (Serve.Obs.write_metrics_file o) metrics_out
       with Sys_error _ -> ());
      (try Option.iter (Serve.Obs.write_trace_file o) trace_out
       with Sys_error _ -> ())
  in
  (* Periodic flusher: a crashed or SIGKILLed daemon still leaves the last
     interval's stats/metrics/trace on disk. Wakes every 0.2 s so shutdown
     isn't delayed by a long flush interval. *)
  let flusher =
    if stats_out = None && obs = None then None
    else
      Some
        (Thread.create
           (fun () ->
             let last = ref (Unix.gettimeofday ()) in
             while not (Serve.Server.stopped server) do
               Thread.delay 0.2;
               let now = Unix.gettimeofday () in
               if now -. !last >= flush_interval then begin
                 last := now;
                 flush_outputs ()
               end
             done)
           ())
  in
  Printf.printf "phloemd: listening on %s%s (jobs %d, queue limit %d, cache %d \
                 entries)\n%!"
    socket
    (match tcp with Some p -> Printf.sprintf " and 127.0.0.1:%d" p | None -> "")
    jobs queue_limit cache_entries;
  Serve.Server.run server;
  Option.iter Thread.join flusher;
  (* Final flush after the drain so the on-disk files cover every request
     the daemon answered. *)
  flush_outputs ();
  (match stats_out with
  | Some file -> Printf.printf "phloemd: stats written to %s\n%!" file
  | None -> ());
  (match metrics_out with
  | Some file -> Printf.printf "phloemd: metrics written to %s\n%!" file
  | None -> ());
  (match trace_out with
  | Some file -> Printf.printf "phloemd: trace written to %s\n%!" file
  | None -> ());
  Printf.printf "phloemd: clean shutdown\n%!";
  0

let socket_arg =
  Arg.(
    value & opt string "phloemd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"also listen on 127.0.0.1:$(docv)")

let jobs_arg =
  Arg.(
    value
    & opt int (Phloem_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:"OCaml 5 domains executing jobs (default: recommended count)")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "bound on queued jobs across all clients; requests past it get a \
           structured shed-load response (0 sheds everything)")

let batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"N"
        ~doc:"max jobs dispatched to the pool per batch (round-robin across \
              clients)")

let cache_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"content-addressed result-cache entry bound (FIFO eviction)")

let sim_cache_arg =
  Arg.(
    value & opt int 256
    & info [ "sim-cache" ] ~docv:"N"
        ~doc:
          "capacity of the simulator's compiled-program and functional-trace \
           memo caches (Sim.set_cache_capacity)")

let max_request_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "max-request" ] ~docv:"BYTES" ~doc:"request line size bound")

let stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ] ~docv:"FILE"
        ~doc:
          "write the stats JSON to $(docv): periodically (see \
           $(b,--flush-interval)), and finally after the shutdown drain")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "enable service metrics and write them to $(docv) periodically and \
           on shutdown; a $(b,.prom) suffix selects Prometheus text \
           exposition, anything else JSON with derived p50/p95/p99")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "enable request-span tracing and write a Chrome trace-event file \
           (chrome://tracing, Perfetto) to $(docv) periodically and on \
           shutdown")

let slow_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "log a warning for any simulate request slower than $(docv) \
           milliseconds (implies metrics collection)")

let flush_arg =
  Arg.(
    value & opt float 10.0
    & info [ "flush-interval" ] ~docv:"SECONDS"
        ~doc:"interval between periodic stats/metrics/trace flushes")

let log_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL" ~doc:"debug | info | warn | error")

let cmd =
  Cmd.v
    (Cmd.info "phloemd" ~doc:"persistent Phloem simulation server"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Line-delimited JSON protocol: one request object per line, one \
              response object per line. Request kinds: simulate, stats, ping, \
              shutdown. Repeated simulate requests are served from a \
              content-addressed cache with byte-identical results. When the \
              bounded job queue is full, requests receive a \
              status=\"shed\" response instead of queueing unboundedly.";
           `P
             "Observability is opt-in: $(b,--metrics-out) exposes counters \
              and latency histograms (cache-hit vs cold split, queue-wait), \
              $(b,--trace-out) records per-request spans (parse, cache \
              lookup, queue wait, dispatch, compile/trace/simulate, respond) \
              as a Chrome trace, and $(b,--slow-ms) logs slow requests. All \
              output files are rewritten atomically every \
              $(b,--flush-interval) seconds and after the shutdown drain.";
           `S Manpage.s_exit_status;
           `P
             "0 after a clean shutdown (SIGTERM, SIGINT, or a shutdown \
              request), draining already-accepted jobs first; 1 when the \
              socket cannot be bound; 2 on usage errors.";
         ])
    Term.(
      const serve $ socket_arg $ tcp_arg $ jobs_arg $ queue_arg $ batch_arg
      $ cache_arg $ sim_cache_arg $ max_request_arg $ stats_arg $ metrics_arg
      $ trace_arg $ slow_arg $ flush_arg $ log_arg)

let () = exit (Cmd.eval' cmd)
