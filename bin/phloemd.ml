(* phloemd: persistent simulation-as-a-service daemon. Accepts
   compile+simulate jobs as line-delimited JSON over a Unix-domain (and
   optionally TCP) socket, executes them on a pool of OCaml 5 domains, and
   serves repeated requests from a content-addressed result cache —
   determinism makes every result a pure function of its request, so a
   repeat is answered in O(lookup) with byte-identical JSON. See README
   "Running phloemd" for the protocol and DESIGN.md "Simulation as a
   service" for the cache-key derivation. *)

open Cmdliner
module Serve = Phloem_serve

let serve socket tcp jobs queue_limit batch cache_entries sim_cache max_request
    stats_out log_level =
  (match Phloem_util.Log.level_of_string log_level with
  | Some l -> Phloem_util.Log.set_level l
  | None ->
    Printf.eprintf "phloemd: unknown log level %s\n" log_level;
    exit 2);
  (* A daemon serving many distinct pipelines needs more memo room than the
     sweep default; PHLOEM_TRACE_CACHE still sets the initial on/off. *)
  Pipette.Sim.set_cache_capacity sim_cache;
  let opts =
    {
      Serve.Server.so_unix = Some socket;
      so_tcp = tcp;
      so_jobs = jobs;
      so_queue_limit = queue_limit;
      so_batch = batch;
      so_cache_entries = cache_entries;
      so_max_request = max_request;
    }
  in
  let server =
    try Serve.Server.create opts
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "phloemd: cannot listen (%s %s: %s)\n" fn arg
        (Unix.error_message e);
      exit 1
  in
  let shutdown _ = Serve.Server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "phloemd: listening on %s%s (jobs %d, queue limit %d, cache %d \
                 entries)\n%!"
    socket
    (match tcp with Some p -> Printf.sprintf " and 127.0.0.1:%d" p | None -> "")
    jobs queue_limit cache_entries;
  Serve.Server.run server;
  (match stats_out with
  | Some file ->
    Pipette.Telemetry.Json.to_file file (Serve.Server.stats_json server);
    Printf.printf "phloemd: stats written to %s\n%!" file
  | None -> ());
  Printf.printf "phloemd: clean shutdown\n%!";
  0

let socket_arg =
  Arg.(
    value & opt string "phloemd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"also listen on 127.0.0.1:$(docv)")

let jobs_arg =
  Arg.(
    value
    & opt int (Phloem_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:"OCaml 5 domains executing jobs (default: recommended count)")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "bound on queued jobs across all clients; requests past it get a \
           structured shed-load response (0 sheds everything)")

let batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"N"
        ~doc:"max jobs dispatched to the pool per batch (round-robin across \
              clients)")

let cache_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"content-addressed result-cache entry bound (FIFO eviction)")

let sim_cache_arg =
  Arg.(
    value & opt int 256
    & info [ "sim-cache" ] ~docv:"N"
        ~doc:
          "capacity of the simulator's compiled-program and functional-trace \
           memo caches (Sim.set_cache_capacity)")

let max_request_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "max-request" ] ~docv:"BYTES" ~doc:"request line size bound")

let stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ] ~docv:"FILE"
        ~doc:"write the final stats JSON to $(docv) on shutdown")

let log_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL" ~doc:"debug | info | warn | error")

let cmd =
  Cmd.v
    (Cmd.info "phloemd" ~doc:"persistent Phloem simulation server"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Line-delimited JSON protocol: one request object per line, one \
              response object per line. Request kinds: simulate, stats, ping, \
              shutdown. Repeated simulate requests are served from a \
              content-addressed cache with byte-identical results. When the \
              bounded job queue is full, requests receive a \
              status=\"shed\" response instead of queueing unboundedly.";
           `S Manpage.s_exit_status;
           `P
             "0 after a clean shutdown (SIGTERM, SIGINT, or a shutdown \
              request), draining already-accepted jobs first; 1 when the \
              socket cannot be bound; 2 on usage errors.";
         ])
    Term.(
      const serve $ socket_arg $ tcp_arg $ jobs_arg $ queue_arg $ batch_arg
      $ cache_arg $ sim_cache_arg $ max_request_arg $ stats_arg $ log_arg)

let () = exit (Cmd.eval' cmd)
